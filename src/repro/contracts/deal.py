"""Multi-round deal contracts — the §8.2 trading-rounds extension.

"As long as all trading-phase transfers are known in advance, we can extend
this approach to encompass multiple rounds of trading. ...  In an r-round
deal, assets change hands r times."

A :class:`PipelineDealContract` generalizes the Figure-4 broker contract to
an ordered *pipeline* of trade steps: the escrowed asset must be traded
once per round, by that round's designated trader, before the usual
all-hashkeys redemption pays the final recipients.  Premium structure per
the paper's recurrence (``E(v,w) = T_1(w)``, ``T_k(v,w) = T_{k+1}(w)``,
``T_r(v,w) = R_w(w)``):

- the escrower posts ``E``; each round-k trader posts its ``T_k`` on this
  contract,
- a ``T_k`` refunds when round k is traded in time, and is awarded to the
  round's expectant recipient when it is not (but only once the contract's
  premium structure is *activated* — all redemption premiums, the escrow
  premium, and every trading premium present),
- redemption premiums behave exactly as in the broker contract, including
  the asset-owner award split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.assets import Asset
from repro.chain.blockchain import CallContext
from repro.contracts.base import Contract
from repro.crypto.hashing import Hashlock
from repro.crypto.hashkeys import HashKey, SignedPath
from repro.errors import ContractError
from repro.graph.digraph import Arc, SwapGraph


@dataclass(frozen=True)
class TradeStep:
    """One round of the pipeline on this contract."""

    round: int  # 1-based trading round
    trader: str
    recipient: str  # who is expecting this trade (gets T on failure)
    arc: Arc  # the digraph arc this trade realizes
    premium_amount: int
    deadline: int


@dataclass(frozen=True)
class DealDeadlines:
    """Heights for one multi-round deal."""

    escrow_premium: int
    trading_premium_base: int  # T_k lands by base + k
    redemption_premium_base: int  # deposit with path q lands by base + |q|
    activation: int
    escrow: int
    trade_base: int  # round k trades by base + k
    hashkey_base: int
    end: int

    @property
    def horizon(self) -> int:
        return self.end + 2

    @staticmethod
    def for_rounds(rounds: int, parties: int) -> "DealDeadlines":
        """Lay out the schedule for an r-round deal with n parties."""
        t_base = 1  # T_k lands by 1 + k; E by 1
        rp_base = 1 + rounds
        activation = rp_base + parties
        escrow = activation + 1
        trade_base = escrow
        hashkey_base = trade_base + rounds
        end = hashkey_base + parties
        return DealDeadlines(
            escrow_premium=1,
            trading_premium_base=t_base,
            redemption_premium_base=rp_base,
            activation=activation,
            escrow=escrow,
            trade_base=trade_base,
            hashkey_base=hashkey_base,
            end=end,
        )


@dataclass
class DealRDeposit:
    """One redemption premium held by a deal contract."""

    arc: Arc
    leader: str
    chain: SignedPath
    amount: int
    state: str = "held"  # held | refunded | awarded


class PipelineDealContract(Contract):
    """Escrow + r-step trade pipeline + all-hashkeys redemption."""

    kind = "pipeline-deal"

    def __init__(
        self,
        graph: SwapGraph,
        public_of: dict[str, str],
        hashlocks: dict[str, Hashlock],
        escrow_arc: Arc,
        steps: tuple[TradeStep, ...],
        asset: Asset,
        amount: int,
        payouts: tuple[tuple[str, int], ...],
        deadlines: DealDeadlines,
        premium: int,
        escrow_premium_shares: tuple[tuple[str, int], ...],
        required_keys: dict[Arc, frozenset[str]],
        contract_of: dict[Arc, str] | None,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.public_of = dict(public_of)
        self.hashlocks = dict(hashlocks)
        self.escrow_arc = escrow_arc
        self.owner = escrow_arc[0]
        self.steps = tuple(sorted(steps, key=lambda s: s.round))
        self.asset = asset
        self.amount = amount
        self.payouts = payouts
        self.deadlines = deadlines
        self.premium = premium
        self.escrow_premium_shares = tuple(escrow_premium_shares)
        self.escrow_premium_amount = sum(a for _, a in escrow_premium_shares)
        self.required_keys = required_keys
        self.contract_of = contract_of

        self.escrow_state = "absent"  # absent | escrowed | redeemed | refunded
        self.escrowed_at: int | None = None
        self.escrow_premium_state = "absent"
        self.trading_premium_state: dict[int, str] = {s.round: "absent" for s in self.steps}
        self.traded: dict[int, bool] = {s.round: False for s in self.steps}
        self.rdeposits: dict[tuple[Arc, str], DealRDeposit] = {}
        self.accepted: dict[str, HashKey] = {}

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def step(self, rnd: int) -> TradeStep:
        for s in self.steps:
            if s.round == rnd:
                return s
        raise ContractError(f"no trading round {rnd} on this contract")

    @property
    def rounds(self) -> tuple[int, ...]:
        return tuple(s.round for s in self.steps)

    @property
    def fully_traded(self) -> bool:
        return all(self.traded.values())

    def _redeemers(self) -> frozenset[str]:
        heads = {self.escrow_arc[1]} | {s.arc[1] for s in self.steps}
        return frozenset(heads)

    def arc_activated(self, arc: Arc) -> bool:
        have = {leader for (a, leader) in self.rdeposits if a == arc}
        return self.required_keys[arc] <= have

    @property
    def contract_activated(self) -> bool:
        """All hosted arcs' redemption premiums plus E and every T."""
        arcs = [self.escrow_arc] + [s.arc for s in self.steps]
        return (
            all(self.arc_activated(arc) for arc in arcs)
            and self.escrow_premium_state != "absent"
            and all(state != "absent" for state in self.trading_premium_state.values())
        )

    # ------------------------------------------------------------------
    # premium transactions
    # ------------------------------------------------------------------
    def deposit_escrow_premium(self, ctx: CallContext) -> None:
        self.require(ctx.sender == self.owner, f"only {self.owner} posts E here")
        self.require(self.escrow_premium_state == "absent", "E already posted")
        self.require(ctx.height <= self.deadlines.escrow_premium, "E deadline passed")
        self.pull(self._chain().native, self.owner, self.escrow_premium_amount)
        self.escrow_premium_state = "held"
        self.emit("escrow_premium_deposited", amount=self.escrow_premium_amount)

    def deposit_trading_premium(self, ctx: CallContext, round: int) -> None:
        step = self.step(round)
        self.require(ctx.sender == step.trader, f"only {step.trader} posts T_{round}")
        self.require(
            self.trading_premium_state[round] == "absent", f"T_{round} already posted"
        )
        self.require(
            ctx.height <= self.deadlines.trading_premium_base + round,
            f"T_{round} deadline passed",
        )
        self.pull(self._chain().native, step.trader, step.premium_amount)
        self.trading_premium_state[round] = "held"
        self.emit("trading_premium_deposited", round=round, amount=step.premium_amount)

    def deposit_redemption_premium(
        self, ctx: CallContext, arc: Arc, path_chain: SignedPath
    ) -> None:
        arc = tuple(arc)  # type: ignore[assignment]
        hosted = [self.escrow_arc] + [s.arc for s in self.steps]
        self.require(arc in hosted, f"{arc} not hosted here")
        self.require(ctx.sender == arc[1], f"only {arc[1]} posts premiums on {arc}")
        leader = path_chain.originator
        self.require(leader in self.hashlocks, f"unknown leader {leader!r}")
        self.require((arc, leader) not in self.rdeposits, "premium already posted")
        expected_payload = f"rpremium:{self.hashlocks[leader].digest}"
        self.require(path_chain.payload == expected_payload, "chain binds wrong hashlock")
        self.require(path_chain.head == arc[1], "path must end at the depositor")
        self.require(path_chain.is_simple(), "path must be simple")
        path = path_chain.path
        self.require(self.graph.is_path(path), "path must follow arcs")
        self.require(
            ctx.height <= self.deadlines.redemption_premium_base + path_chain.length,
            f"redemption premium timed out (|q|={path_chain.length})",
        )
        self.require(
            path_chain.verify(self._chain().registry, self.public_of),
            "premium path failed signature verification",
        )
        # imported here to avoid a package-level import cycle
        from repro.core.premiums import pruned_redemption_premium_amount

        amount = pruned_redemption_premium_amount(
            self.graph, path, arc[0], self.premium, self.contract_of
        )
        self.pull(self._chain().native, arc[1], amount)
        self.rdeposits[(arc, leader)] = DealRDeposit(arc, leader, path_chain, amount)
        self.emit(
            "redemption_premium_deposited", arc=arc, leader=leader, path=path, amount=amount
        )

    # ------------------------------------------------------------------
    # base-protocol transactions
    # ------------------------------------------------------------------
    def escrow_asset(self, ctx: CallContext) -> None:
        self.require(ctx.sender == self.owner, f"only {self.owner} escrows here")
        self.require(self.escrow_state == "absent", "already escrowed")
        self.require(ctx.height <= self.deadlines.escrow, "escrow deadline passed")
        self.require(self.contract_activated, "contract not activated")
        self.pull(self.asset, self.owner, self.amount)
        self.escrow_state = "escrowed"
        self.escrowed_at = ctx.height
        self.emit("asset_escrowed", owner=self.owner, amount=self.amount)
        if self.escrow_premium_state == "held":
            self.push(self._chain().native, self.owner, self.escrow_premium_amount)
            self.escrow_premium_state = "refunded"
            self.emit("escrow_premium_refunded", to=self.owner)

    def trade(self, ctx: CallContext, round: int) -> None:
        step = self.step(round)
        self.require(ctx.sender == step.trader, f"only {step.trader} trades round {round}")
        self.require(self.escrow_state == "escrowed", "nothing escrowed to trade")
        self.require(not self.traded[round], f"round {round} already traded")
        prior = [s.round for s in self.steps if s.round < round]
        self.require(
            all(self.traded[k] for k in prior), "earlier rounds not yet traded"
        )
        self.require(
            ctx.height <= self.deadlines.trade_base + round,
            f"round {round} trade deadline passed",
        )
        self.require(self.contract_activated, "contract not activated")
        self.traded[round] = True
        self.emit("traded", round=round, by=step.trader, arc=step.arc)
        if self.trading_premium_state[round] == "held":
            self.push(self._chain().native, step.trader, step.premium_amount)
            self.trading_premium_state[round] = "refunded"
            self.emit("trading_premium_refunded", round=round, to=step.trader)
        self._try_redeem(ctx.height)

    def present_hashkey(self, ctx: CallContext, hashkey: HashKey) -> None:
        leader = hashkey.leader
        self.require(leader in self.hashlocks, f"unknown leader {leader!r}")
        self.require(leader not in self.accepted, f"{leader}'s key already accepted")
        # A leader may always present its own key directly (|q| = 1, the
        # tightest timeout), on either contract — this keeps the two
        # contracts' key sets symmetric and removes forwarding bottlenecks,
        # so the deal completes or dies atomically.  Forwarded keys must
        # start at one of this contract's redeemers, as usual.
        direct_own = hashkey.length == 1 and leader in self.hashlocks
        self.require(
            direct_own or hashkey.redeemer in self._redeemers(),
            "path must start at one of this contract's redeemers",
        )
        self.require(
            ctx.height <= self.deadlines.hashkey_base + hashkey.length,
            f"hashkey timed out (|q|={hashkey.length})",
        )
        valid = hashkey.verify(
            self._chain().registry, self.public_of, self.hashlocks[leader],
            arcs=self.graph.arc_set,
        )
        self.require(valid, "hashkey failed verification")
        self.accepted[leader] = hashkey
        self.emit("hashkey_accepted", leader=leader, path=hashkey.path)
        for (arc, dep_leader), deposit in self.rdeposits.items():
            if dep_leader == leader and deposit.state == "held":
                self.push(self._chain().native, arc[1], deposit.amount)
                deposit.state = "refunded"
                self.emit(
                    "redemption_premium_refunded",
                    arc=arc, leader=leader, to=arc[1], amount=deposit.amount,
                )
        self._try_redeem(ctx.height)

    def _try_redeem(self, height: int) -> None:
        if self.escrow_state != "escrowed" or not self.fully_traded:
            return
        if set(self.accepted) != set(self.hashlocks):
            return
        for recipient, amount in self.payouts:
            self.push(self.asset, recipient, amount)
        self.escrow_state = "redeemed"
        self.emit("redeemed", payouts=self.payouts)

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        native = self._chain().native

        if height > self.deadlines.activation and not self.contract_activated:
            if self.escrow_premium_state == "held":
                self.push(native, self.owner, self.escrow_premium_amount)
                self.escrow_premium_state = "refunded"
                self.emit("escrow_premium_refunded", to=self.owner)
            for step in self.steps:
                if self.trading_premium_state[step.round] == "held":
                    self.push(native, step.trader, step.premium_amount)
                    self.trading_premium_state[step.round] = "refunded"
                    self.emit("trading_premium_refunded", round=step.round, to=step.trader)

        if (
            self.escrow_premium_state == "held"
            and self.contract_activated
            and self.escrow_state == "absent"
            and height > self.deadlines.escrow
        ):
            # Paid out in the statically computed deficit shares: every
            # broker blocked by this escrow failure breaks even.
            for party, amount in self.escrow_premium_shares:
                self.push(native, party, amount)
            self.escrow_premium_state = "awarded"
            self.emit(
                "escrow_premium_awarded",
                shares=self.escrow_premium_shares,
                amount=self.escrow_premium_amount,
            )

        for step in self.steps:
            if (
                self.trading_premium_state[step.round] == "held"
                and self.contract_activated
                and not self.traded[step.round]
                and height > self.deadlines.trade_base + step.round
            ):
                self.push(native, step.recipient, step.premium_amount)
                self.trading_premium_state[step.round] = "awarded"
                self.emit(
                    "trading_premium_awarded",
                    round=step.round, to=step.recipient, amount=step.premium_amount,
                )

        if height > self.deadlines.end:
            if self.escrow_state == "escrowed":
                self.push(self.asset, self.owner, self.amount)
                self.escrow_state = "refunded"
                self.emit("asset_refunded", to=self.owner, amount=self.amount)
            asset_was_locked = self.escrowed_at is not None
            for (arc, leader), deposit in self.rdeposits.items():
                if deposit.state != "held":
                    continue
                head = self.owner if asset_was_locked else arc[0]
                self.push(native, head, self.premium)
                remainder = deposit.amount - self.premium
                if remainder:
                    self.push(native, arc[0], remainder)
                deposit.state = "awarded"
                self.emit(
                    "redemption_premium_awarded",
                    arc=arc, leader=leader,
                    compensated=head, reimbursed=arc[0], amount=deposit.amount,
                )
