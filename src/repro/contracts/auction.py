"""Auction contracts — §9.

Alice auctions tickets to ``n`` bidders across two chains.  Alice generates
one secret per bidder; publishing bidder ``X``'s hashkey on both contracts
declares ``X`` the winner.  Phases (heights):

- setup (≤ 1): Alice escrows the tickets (ticket chain) and endows the coin
  contract with ``n·p`` premiums (hedged variant),
- bidding (≤ 2): bidders deposit coin bids on the coin contract,
- declaration (≤ 3): Alice publishes the winner's hashkey on both chains
  (a hashkey with path length |q| is valid until height ``2 + |q|``),
- challenge (heights 4–6, i.e. 3Δ): bidders copy any hashkey that appears
  on one contract but not the other; by height 5 every hashkey has timed
  out (max |q| = 3 ⇒ deadline 5), so the extra Δ leaves slack for the last
  forward to land,
- commit (> 6): the contracts settle per the §9.1 rules; in the hedged
  variant a wrecked auction additionally pays each bidder ``p`` out of
  Alice's endowment (§9.2).

Bidders pay no premiums: they cannot lock up anyone's assets (a withheld
bid "arguably does the other party a favor").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.assets import Asset
from repro.chain.blockchain import CallContext
from repro.contracts.base import Contract
from repro.crypto.hashing import Hashlock
from repro.crypto.hashkeys import HashKey


@dataclass(frozen=True)
class AuctionDeadlines:
    """Heights for one auction run."""

    setup: int = 1
    bidding: int = 2
    hashkey_base: int = 2  # a hashkey with path q lands by base + |q|
    commit: int = 6  # settlement fires above this height

    @property
    def horizon(self) -> int:
        return self.commit + 2


class AuctionContractBase(Contract):
    """Shared hashkey validation for both auction contracts."""

    def __init__(
        self,
        auctioneer: str,
        bidders: tuple[str, ...],
        hashlocks: dict[str, Hashlock],
        public_of: dict[str, str],
        deadlines: AuctionDeadlines,
    ) -> None:
        super().__init__()
        self.auctioneer = auctioneer
        self.bidders = bidders
        self.hashlocks = dict(hashlocks)  # bidder -> lock designating them
        self.public_of = dict(public_of)
        self.deadlines = deadlines
        self.accepted: dict[str, HashKey] = {}  # designated bidder -> key
        self.accepted_at: dict[str, int] = {}
        self.settled = False

    def _designated(self, hashkey: HashKey) -> str | None:
        for bidder, lock in self.hashlocks.items():
            if lock.digest == hashkey.hashlock.digest:
                return bidder
        return None

    def present_hashkey(self, ctx: CallContext, hashkey: HashKey) -> None:
        """Accept a hashkey designating one bidder (Lemma 7 forwarding)."""
        bidder = self._designated(hashkey)
        self.require(bidder is not None, "hashkey matches no bidder's lock")
        self.require(bidder not in self.accepted, f"key for {bidder} already accepted")
        self.require(
            hashkey.leader == self.auctioneer,
            "hashkeys originate with the auctioneer",
        )
        self.require(
            ctx.height <= self.deadlines.hashkey_base + hashkey.length,
            f"hashkey timed out (|q|={hashkey.length})",
        )
        valid = hashkey.verify(
            self._chain().registry,
            self.public_of,
            self.hashlocks[bidder],
            arcs=None,  # auction paths are not digraph-constrained
        )
        self.require(valid, "hashkey failed verification")
        self.accepted[bidder] = hashkey
        self.accepted_at[bidder] = ctx.height
        self.emit("hashkey_accepted", designates=bidder, path=hashkey.path)


class CoinAuctionContract(AuctionContractBase):
    """Coin-chain contract: bids, premium endowment, §9.1 commit rules."""

    kind = "auction-coin"

    def __init__(
        self,
        auctioneer: str,
        bidders: tuple[str, ...],
        hashlocks: dict[str, Hashlock],
        public_of: dict[str, str],
        deadlines: AuctionDeadlines,
        coin_asset: Asset,
        premium: int = 0,
    ) -> None:
        super().__init__(auctioneer, bidders, hashlocks, public_of, deadlines)
        self.coin_asset = coin_asset
        self.premium = premium
        self.endowment = 0
        self.bids: dict[str, int] = {}
        self.bid_at: dict[str, int] = {}
        self.outcome = ""  # "completed" | "refunded" after settlement

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def endow_premium(self, ctx: CallContext) -> None:
        """Alice deposits ``n·p`` native currency as bidder protection."""
        self.require(ctx.sender == self.auctioneer, "only the auctioneer endows")
        self.require(self.endowment == 0, "already endowed")
        self.require(ctx.height <= self.deadlines.setup, "setup deadline passed")
        amount = self.premium * len(self.bidders)
        self.pull(self._chain().native, self.auctioneer, amount)
        self.endowment = amount
        self.emit("premium_endowed", amount=amount)

    def bid(self, ctx: CallContext, amount: int) -> None:
        """A bidder deposits its (open) bid."""
        self.require(ctx.sender in self.bidders, f"{ctx.sender} is not a bidder")
        self.require(ctx.sender not in self.bids, "already bid")
        self.require(amount > 0, "bid must be positive")
        self.require(ctx.height <= self.deadlines.bidding, "bidding closed")
        self.pull(self.coin_asset, ctx.sender, amount)
        self.bids[ctx.sender] = amount
        self.bid_at[ctx.sender] = ctx.height
        self.emit("bid_placed", bidder=ctx.sender, amount=amount)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def high_bidder(self) -> str | None:
        """Winner: highest bid, lexicographic tie-break (deterministic)."""
        if not self.bids:
            return None
        return max(self.bids, key=lambda b: (self.bids[b], b))

    # ------------------------------------------------------------------
    # settlement (the §9.1 commit phase)
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        if self.settled or height <= self.deadlines.commit:
            return
        self.settled = True
        native = self._chain().native
        winner = self.high_bidder
        honest = winner is not None and set(self.accepted) == {winner}
        if honest:
            self.push(self.coin_asset, self.auctioneer, self.bids[winner])
            for bidder, amount in self.bids.items():
                if bidder != winner:
                    self.push(self.coin_asset, bidder, amount)
            if self.endowment:
                self.push(native, self.auctioneer, self.endowment)
            self.outcome = "completed"
            self.emit("auction_completed", winner=winner, price=self.bids[winner])
        else:
            for bidder, amount in self.bids.items():
                self.push(self.coin_asset, bidder, amount)
            remaining = self.endowment
            if self.endowment:
                # §9.2: a wrecked auction pays each (actual) bidder p; a
                # party who never bid locked nothing and is owed nothing.
                for bidder in self.bidders:
                    if bidder in self.bids:
                        self.push(native, bidder, self.premium)
                        remaining -= self.premium
                if remaining:
                    self.push(native, self.auctioneer, remaining)
            self.outcome = "refunded"
            self.emit(
                "auction_refunded",
                accepted=sorted(self.accepted),
                compensated=self.premium if self.endowment else 0,
            )


class TicketAuctionContract(AuctionContractBase):
    """Ticket-chain contract: escrow + the §9.1 ticket commit rule."""

    kind = "auction-ticket"

    def __init__(
        self,
        auctioneer: str,
        bidders: tuple[str, ...],
        hashlocks: dict[str, Hashlock],
        public_of: dict[str, str],
        deadlines: AuctionDeadlines,
        ticket_asset: Asset,
        tickets: int,
    ) -> None:
        super().__init__(auctioneer, bidders, hashlocks, public_of, deadlines)
        self.ticket_asset = ticket_asset
        self.tickets = tickets
        self.escrowed = False
        self.outcome = ""  # "awarded" | "refunded"
        self.awarded_to = ""

    def escrow_tickets(self, ctx: CallContext) -> None:
        self.require(ctx.sender == self.auctioneer, "only the auctioneer escrows")
        self.require(not self.escrowed, "already escrowed")
        self.require(ctx.height <= self.deadlines.setup, "setup deadline passed")
        self.pull(self.ticket_asset, self.auctioneer, self.tickets)
        self.escrowed = True
        self.emit("tickets_escrowed", amount=self.tickets)

    def on_tick(self, height: int) -> None:
        if self.settled or not self.escrowed or height <= self.deadlines.commit:
            return
        self.settled = True
        if len(self.accepted) == 1:
            (bidder,) = self.accepted
            self.push(self.ticket_asset, bidder, self.tickets)
            self.outcome = "awarded"
            self.awarded_to = bidder
            self.emit("tickets_awarded", to=bidder)
        else:
            self.push(self.ticket_asset, self.auctioneer, self.tickets)
            self.outcome = "refunded"
            self.emit("tickets_refunded", accepted=sorted(self.accepted))
