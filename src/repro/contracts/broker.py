"""Broker (cross-chain deal) contracts — §8, Figure 4.

Two contracts implement the three-party deal:

- the **ticket contract** (ticket chain) escrows Bob's tickets and hosts
  arcs ``(B, A)`` (escrow) and ``(A, C)`` (Alice trades the tickets to
  Carol); on redemption the tickets go to Carol,
- the **coin contract** (coin chain) escrows Carol's 101 coins and hosts
  arcs ``(C, A)`` and ``(A, B)``; on redemption Bob receives 100 coins and
  Alice keeps the 1-coin markup.

Every party is a leader with its own hashlock; a contract pays out when it
has been escrowed, *traded* by the broker, and holds a valid hashkey from
every party (footnote 7: arcs sharing a contract share its hashkey set).

The hedged variant (:class:`HedgedBrokerContract`) adds three premium kinds
(§8.2): escrow premiums ``E`` (by the escrowers), trading premiums ``T``
(by the broker), and per-arc redemption premiums ``R`` with authenticated
paths, amounts from Equation 1 (optionally with footnote-7 pruning).  A
premium activates only when its arc's expected redemption premiums are all
present; unactivated premiums can only be refunded.

Redemption premium award rule: the leading ``p`` compensates the contract's
asset owner when the asset was actually locked (on trading arcs the graph
tail is the broker, but the *locked* asset belongs to the escrower — this
is what makes "Bob omits B2 ⇒ Bob pays a premium to Carol" come out right);
the passthrough remainder reimburses the graph tail for its own forced
deposits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.assets import Asset
from repro.chain.blockchain import CallContext
from repro.contracts.base import Contract
from repro.crypto.hashing import Hashlock
from repro.crypto.hashkeys import HashKey, SignedPath
from repro.graph.digraph import Arc, SwapGraph


@dataclass(frozen=True)
class BrokerDeadlines:
    """All heights for one broker run (base or hedged offsets)."""

    escrow_premium: int
    trading_premium: int
    redemption_premium_base: int  # deposit with path q lands by base + |q|
    activation: int
    escrow: int
    trade: int
    hashkey_base: int  # hashkey with path q lands by base + |q|
    end: int

    @property
    def horizon(self) -> int:
        return self.end + 2

    @staticmethod
    def base() -> "BrokerDeadlines":
        """Unhedged schedule: escrow 1, trade 2, keys from 2, end 5."""
        return BrokerDeadlines(
            escrow_premium=0,
            trading_premium=0,
            redemption_premium_base=0,
            activation=0,
            escrow=1,
            trade=2,
            hashkey_base=2,
            end=5,
        )

    @staticmethod
    def hedged() -> "BrokerDeadlines":
        """Premium phases at heights 1..5, then the base flow shifted."""
        return BrokerDeadlines(
            escrow_premium=1,
            trading_premium=2,
            redemption_premium_base=2,
            activation=5,
            escrow=6,
            trade=7,
            hashkey_base=7,
            end=10,
        )


@dataclass
class BrokerRDeposit:
    """One redemption premium held by a broker contract."""

    arc: Arc
    leader: str
    chain: SignedPath
    amount: int
    state: str = "held"  # held | refunded | awarded


class BaseBrokerContract(Contract):
    """Premium-free deal contract: escrow → trade → all-hashkeys payout."""

    kind = "broker"

    def __init__(
        self,
        graph: SwapGraph,
        public_of: dict[str, str],
        hashlocks: dict[str, Hashlock],
        escrow_arc: Arc,
        trading_arc: Arc,
        asset: Asset,
        amount: int,
        payouts: tuple[tuple[str, int], ...],
        deadlines: BrokerDeadlines,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.public_of = dict(public_of)
        self.hashlocks = dict(hashlocks)
        self.escrow_arc = escrow_arc
        self.trading_arc = trading_arc
        self.owner = escrow_arc[0]  # whose asset this contract locks
        self.broker = trading_arc[0]
        self.asset = asset
        self.amount = amount
        self.payouts = payouts
        self.deadlines = deadlines

        self.escrow_state = "absent"  # absent | escrowed | redeemed | refunded
        self.traded = False
        self.traded_at: int | None = None
        self.escrowed_at: int | None = None
        self.resolved_at: int | None = None
        self.accepted: dict[str, HashKey] = {}
        self.accepted_at: dict[str, int] = {}

    # -- redeemers allowed to head a hashkey path on this contract -------
    def _redeemers(self) -> frozenset[str]:
        return frozenset({self.escrow_arc[1], self.trading_arc[1]})

    def _may_escrow(self, ctx: CallContext) -> None:
        """Hook: the hedged variant requires escrow-arc activation."""

    def _may_trade(self, ctx: CallContext) -> None:
        """Hook: the hedged variant requires trading-arc activation."""

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def escrow_asset(self, ctx: CallContext) -> None:
        """The owner escrows the contract's asset (step B1 / C1)."""
        self.require(ctx.sender == self.owner, f"only {self.owner} escrows here")
        self.require(self.escrow_state == "absent", "already escrowed")
        self.require(ctx.height <= self.deadlines.escrow, "escrow deadline passed")
        self._may_escrow(ctx)
        self.pull(self.asset, self.owner, self.amount)
        self.escrow_state = "escrowed"
        self.escrowed_at = ctx.height
        self.emit("asset_escrowed", owner=self.owner, amount=self.amount)

    def trade(self, ctx: CallContext) -> None:
        """The broker commits the trading-phase transfer (step A1 / A2)."""
        self.require(ctx.sender == self.broker, f"only {self.broker} trades here")
        self.require(self.escrow_state == "escrowed", "nothing escrowed to trade")
        self.require(not self.traded, "already traded")
        self.require(ctx.height <= self.deadlines.trade, "trade deadline passed")
        self._may_trade(ctx)
        self.traded = True
        self.traded_at = ctx.height
        self.emit("traded", by=self.broker, arc=self.trading_arc)
        self._try_redeem(ctx.height)

    def present_hashkey(self, ctx: CallContext, hashkey: HashKey) -> None:
        """Accept one leader's hashkey (anyone may present a valid one)."""
        leader = hashkey.leader
        self.require(leader in self.hashlocks, f"unknown leader {leader!r}")
        self.require(leader not in self.accepted, f"{leader}'s key already accepted")
        self.require(
            hashkey.redeemer in self._redeemers(),
            "path must start at one of this contract's redeemers",
        )
        self.require(
            ctx.height <= self.deadlines.hashkey_base + hashkey.length,
            f"hashkey timed out (|q|={hashkey.length})",
        )
        valid = hashkey.verify(
            self._chain().registry,
            self.public_of,
            self.hashlocks[leader],
            arcs=self.graph.arc_set,
        )
        self.require(valid, "hashkey failed verification")
        self.accepted[leader] = hashkey
        self.accepted_at[leader] = ctx.height
        self.emit("hashkey_accepted", leader=leader, path=hashkey.path)
        self._on_hashkey_accepted(leader, ctx.height)
        self._try_redeem(ctx.height)

    def _on_hashkey_accepted(self, leader: str, height: int) -> None:
        """Hook for the hedged variant (premium refunds)."""

    def _try_redeem(self, height: int) -> None:
        if self.escrow_state != "escrowed" or not self.traded:
            return
        if set(self.accepted) != set(self.hashlocks):
            return
        for recipient, amount in self.payouts:
            self.push(self.asset, recipient, amount)
        self.escrow_state = "redeemed"
        self.resolved_at = height
        self.emit("redeemed", payouts=self.payouts)

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        if self.escrow_state == "escrowed" and height > self.deadlines.end:
            self.push(self.asset, self.owner, self.amount)
            self.escrow_state = "refunded"
            self.resolved_at = height
            self.emit("asset_refunded", to=self.owner, amount=self.amount)


class HedgedBrokerContract(BaseBrokerContract):
    """Deal contract with the §8.2 premium structure."""

    kind = "hedged-broker"

    def __init__(
        self,
        graph: SwapGraph,
        public_of: dict[str, str],
        hashlocks: dict[str, Hashlock],
        escrow_arc: Arc,
        trading_arc: Arc,
        asset: Asset,
        amount: int,
        payouts: tuple[tuple[str, int], ...],
        deadlines: BrokerDeadlines,
        premium: int,
        escrow_premium_amount: int,
        trading_premium_amount: int,
        required_keys: dict[Arc, frozenset[str]],
        contract_of: dict[Arc, str] | None,
    ) -> None:
        super().__init__(
            graph, public_of, hashlocks, escrow_arc, trading_arc,
            asset, amount, payouts, deadlines,
        )
        self.premium = premium
        self.escrow_premium_amount = escrow_premium_amount
        self.trading_premium_amount = trading_premium_amount
        self.required_keys = required_keys
        self.contract_of = contract_of
        self.escrow_premium_state = "absent"  # absent | held | refunded | awarded
        self.trading_premium_state = "absent"
        self.rdeposits: dict[tuple[Arc, str], BrokerRDeposit] = {}

    # -- activation -------------------------------------------------------
    def arc_activated(self, arc: Arc) -> bool:
        """All redemption premiums this arc expects are deposited."""
        have = {leader for (a, leader) in self.rdeposits if a == arc}
        return self.required_keys[arc] <= have

    @property
    def contract_activated(self) -> bool:
        """Contract-level activation: the premium structure on this chain
        is complete — both hosted arcs' redemption premium sets plus the
        escrow and trading premiums.  Because each party's reimbursement
        chain spans both arcs of a contract (E on the escrow arc backs the
        broker's T on the trading arc), activating one arc without the
        other would let a premium-phase sore loser force an uncovered
        payout; see the module docstring."""
        return (
            self.arc_activated(self.escrow_arc)
            and self.arc_activated(self.trading_arc)
            and self.escrow_premium_state != "absent"
            and self.trading_premium_state != "absent"
        )

    def _may_escrow(self, ctx: CallContext) -> None:
        self.require(self.contract_activated, "contract not activated")

    def _may_trade(self, ctx: CallContext) -> None:
        self.require(self.contract_activated, "contract not activated")

    # -- premium transactions ----------------------------------------------
    def deposit_escrow_premium(self, ctx: CallContext) -> None:
        """Escrower posts ``E = T(A)`` (native currency)."""
        self.require(ctx.sender == self.owner, f"only {self.owner} posts E here")
        self.require(self.escrow_premium_state == "absent", "E already posted")
        self.require(ctx.height <= self.deadlines.escrow_premium, "E deadline passed")
        self.pull(self._chain().native, self.owner, self.escrow_premium_amount)
        self.escrow_premium_state = "held"
        self.emit("escrow_premium_deposited", amount=self.escrow_premium_amount)

    def deposit_trading_premium(self, ctx: CallContext) -> None:
        """Broker posts ``T(A, w) = R_w(w)``."""
        self.require(ctx.sender == self.broker, f"only {self.broker} posts T here")
        self.require(self.trading_premium_state == "absent", "T already posted")
        self.require(ctx.height <= self.deadlines.trading_premium, "T deadline passed")
        self.pull(self._chain().native, self.broker, self.trading_premium_amount)
        self.trading_premium_state = "held"
        self.emit("trading_premium_deposited", amount=self.trading_premium_amount)

    def deposit_redemption_premium(
        self, ctx: CallContext, arc: Arc, path_chain: SignedPath
    ) -> None:
        """The arc's redeemer posts one leader's redemption premium."""
        arc = tuple(arc)  # type: ignore[assignment]
        self.require(arc in (self.escrow_arc, self.trading_arc), f"{arc} not hosted here")
        self.require(ctx.sender == arc[1], f"only {arc[1]} posts premiums on {arc}")
        leader = path_chain.originator
        self.require(leader in self.hashlocks, f"unknown leader {leader!r}")
        self.require((arc, leader) not in self.rdeposits, "premium already posted")
        expected_payload = f"rpremium:{self.hashlocks[leader].digest}"
        self.require(path_chain.payload == expected_payload, "chain binds wrong hashlock")
        self.require(path_chain.head == arc[1], "path must end at the depositor")
        self.require(path_chain.is_simple(), "path must be simple")
        path = path_chain.path
        self.require(self.graph.is_path(path), "path must follow arcs")
        self.require(
            ctx.height <= self.deadlines.redemption_premium_base + path_chain.length,
            f"redemption premium timed out (|q|={path_chain.length})",
        )
        self.require(
            path_chain.verify(self._chain().registry, self.public_of),
            "premium path failed signature verification",
        )
        # imported here to avoid a package-level import cycle
        from repro.core.premiums import pruned_redemption_premium_amount

        amount = pruned_redemption_premium_amount(
            self.graph, path, arc[0], self.premium, self.contract_of
        )
        self.pull(self._chain().native, arc[1], amount)
        self.rdeposits[(arc, leader)] = BrokerRDeposit(arc, leader, path_chain, amount)
        self.emit(
            "redemption_premium_deposited",
            arc=arc, leader=leader, path=path, amount=amount,
        )

    # -- refund hooks --------------------------------------------------------
    def escrow_asset(self, ctx: CallContext) -> None:
        super().escrow_asset(ctx)
        if self.escrow_premium_state == "held":
            self.push(self._chain().native, self.owner, self.escrow_premium_amount)
            self.escrow_premium_state = "refunded"
            self.emit("escrow_premium_refunded", to=self.owner)

    def trade(self, ctx: CallContext) -> None:
        super().trade(ctx)
        if self.trading_premium_state == "held":
            self.push(self._chain().native, self.broker, self.trading_premium_amount)
            self.trading_premium_state = "refunded"
            self.emit("trading_premium_refunded", to=self.broker)

    def _on_hashkey_accepted(self, leader: str, height: int) -> None:
        for (arc, dep_leader), deposit in self.rdeposits.items():
            if dep_leader == leader and deposit.state == "held":
                self.push(self._chain().native, arc[1], deposit.amount)
                deposit.state = "refunded"
                self.emit(
                    "redemption_premium_refunded",
                    arc=arc, leader=leader, to=arc[1], amount=deposit.amount,
                )

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        native = self._chain().native

        # Unactivated E/T premiums refund once phase 2 is over.
        if height > self.deadlines.activation and not self.contract_activated:
            if self.escrow_premium_state == "held":
                self.push(native, self.owner, self.escrow_premium_amount)
                self.escrow_premium_state = "refunded"
                self.emit("escrow_premium_refunded", to=self.owner)
            if self.trading_premium_state == "held":
                self.push(native, self.broker, self.trading_premium_amount)
                self.trading_premium_state = "refunded"
                self.emit("trading_premium_refunded", to=self.broker)

        # Activated E awarded to the broker when the escrow never came.
        if (
            self.escrow_premium_state == "held"
            and self.contract_activated
            and self.escrow_state == "absent"
            and height > self.deadlines.escrow
        ):
            self.push(native, self.escrow_arc[1], self.escrow_premium_amount)
            self.escrow_premium_state = "awarded"
            self.emit(
                "escrow_premium_awarded",
                to=self.escrow_arc[1], amount=self.escrow_premium_amount,
            )

        # Activated T awarded to the expectant recipient when no trade came.
        if (
            self.trading_premium_state == "held"
            and self.contract_activated
            and not self.traded
            and height > self.deadlines.trade
        ):
            self.push(native, self.trading_arc[1], self.trading_premium_amount)
            self.trading_premium_state = "awarded"
            self.emit(
                "trading_premium_awarded",
                to=self.trading_arc[1], amount=self.trading_premium_amount,
            )

        # Asset refund (inherited) and redemption premium awards at the end.
        super().on_tick(height)
        if height > self.deadlines.end:
            asset_was_locked = self.escrowed_at is not None
            for (arc, leader), deposit in self.rdeposits.items():
                if deposit.state != "held":
                    continue
                head = self.owner if asset_was_locked else arc[0]
                self.push(native, head, self.premium)
                remainder = deposit.amount - self.premium
                if remainder:
                    self.push(native, arc[0], remainder)
                deposit.state = "awarded"
                self.emit(
                    "redemption_premium_awarded",
                    arc=arc, leader=leader,
                    compensated=head, reimbursed=arc[0],
                    amount=deposit.amount,
                )
