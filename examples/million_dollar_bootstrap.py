"""Bootstrapping premiums for a $1,000,000 swap (§6, Figure 2).

"With 1% premiums and $4 initial lock-up risk, 3 bootstrapping rounds are
enough to hedge a $1,000,000 swap."  This example reproduces the ladder,
runs the full staged protocol, and shows that reneging at any rung costs
the deviator that rung's premium while the compliant party never loses.

Run with:  python examples/million_dollar_bootstrap.py
"""

from repro.analysis.options import suggest_premium
from repro.core.bootstrap import (
    BootstrapSpec,
    BootstrappedSwap,
    extract_bootstrap_outcome,
    premium_ladder,
    rounds_estimate,
    rounds_needed,
)
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


def show_ladder() -> None:
    a = b = 1_000_000
    print("=== the §6 ladder: A = B = $1,000,000, P = 100 (1% premiums) ===")
    print(f"rounds needed for a $4 risk: {rounds_needed(a, b, 100, 4)} "
          f"(paper's log_P((A+B)/p) = {rounds_estimate(a, b, 100, 4):.2f})")
    for level, (a_i, b_i) in enumerate(premium_ladder(a, b, 100, 3)):
        tag = "principals" if level == 0 else f"level-{level} premiums"
        print(f"  {tag:22s} A_{level} = {a_i:>9,}   B_{level} = {b_i:>9,}")
    print("the only unprotected deposit is B_3 = $4.")


def run_protocol() -> None:
    print("\n=== full staged run (2 exchange stages + the hedged swap) ===")
    instance = BootstrappedSwap(BootstrapSpec()).build()
    result = execute(instance)
    out = extract_bootstrap_outcome(instance, result)
    print(f"stages completed: {out.stages_completed}/{out.total_stages}")
    print(f"principals swapped: {out.swapped}; premium nets: {out.premium_net}")
    assert out.swapped


def renege_mid_ladder() -> None:
    print("\n=== Bob reneges in the middle of the ladder ===")
    instance = BootstrappedSwap(BootstrapSpec()).build()
    result = execute(instance, {"Bob": lambda a: halt_at(a, 11)})
    out = extract_bootstrap_outcome(instance, result)
    print(f"stages completed: {out.stages_completed}/{out.total_stages}")
    print(f"premium nets: {out.premium_net} — Bob pays, Alice is compensated")
    print(f"longest lockup: {out.max_lockup} Δ (one stage, per §6)")
    assert out.premium_net["Alice"] >= 0


def size_premium_with_crr() -> None:
    print("\n=== sizing the premium rate with Cox-Ross-Rubinstein (§4) ===")
    value = 1_000_000
    for sigma in (0.5, 1.0, 2.0):
        prem = suggest_premium(value, sigma, lockup_deltas=6, delta_hours=12)
        print(f"  sigma = {sigma:4.1f}/yr: fair premium ≈ ${prem:>10,.0f} "
              f"({100 * prem / value:.2f}% of the escrow)")


if __name__ == "__main__":
    show_ladder()
    run_protocol()
    renege_mid_ladder()
    size_premium_with_crr()
