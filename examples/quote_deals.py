"""Price a mixed basket of cross-chain deals with the quote service.

``repro.quote`` turns the paper's premium mathematics into a
question-shaped API: a ``QuoteRequest`` names a deal (a §5.2 family or
an arbitrary deal graph), a shock assumption, and a tolerance; the
returned ``Quote`` carries the deterring premium fraction π*, the
integer premium on the family's base notional, the full per-arc
escrow + redemption deposit schedule (Equations 1–2), and provenance
saying which rung of the three-tier ladder answered:

- tier 1 — the §5.2 closed forms (named families, sub-millisecond),
- tier 2 — a cached refined-frontier row (content-addressed lookup),
- tier 3 — a narrow measured fallback that stores its row back, so the
  second identical question is a cache hit.

This example prices six deals: the Figure-1 two-party swap, a 5-party
ring, the brokered deal (its pivot *and* the paper's un-hedgeable
seller+buyer pair), the ticket auction, and ``figure3`` — the paper's
own digraph, which the service refuses to price because under uniform
notionals completing it costs the pivot more than any stake it could
forfeit: a structurally losing deal, surfaced rather than papered over.

Run with:  python examples/quote_deals.py
"""

import tempfile

from repro.campaign import ResultCache
from repro.quote import QuoteEngine, QuoteRequest, batch_digest, quote_batch

BASKET = (
    ("the Figure-1 swap", QuoteRequest(family="two-party")),
    ("a 5-party ring", QuoteRequest(graph="ring:5")),
    ("the brokered deal", QuoteRequest(family="broker")),
    ("broker, seller+buyer colluding",
     QuoteRequest(family="broker", coalition="seller+buyer")),
    ("the ticket auction", QuoteRequest(family="auction")),
    ("the paper's Figure-3 digraph", QuoteRequest(graph="figure3")),
)


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        engine = QuoteEngine(cache=ResultCache(root))

        print("=== pricing a mixed basket, one deal at a time ===")
        quotes = []
        for label, request in BASKET:
            quote = engine.quote(request)
            quotes.append(quote)
            if quote.hedgeable:
                print(
                    f"{label:32s} tier {quote.tier}  pi*={quote.pi_star}  "
                    f"premium {quote.premium} on base {quote.base}  "
                    f"({len(quote.schedule)} deposits)"
                )
            else:
                print(
                    f"{label:32s} tier {quote.tier}  un-hedgeable — "
                    "no premium deters this walk"
                )

        # the broker pivot prices; the seller+buyer pair never does —
        # the paper's sore spot, answered analytically at tier 1
        assert quotes[2].hedgeable and not quotes[3].hedgeable
        # figure3 prices at no premium either, but for a different
        # reason: the deal itself is a loss for its pivot (measured)
        assert not quotes[5].hedgeable and quotes[5].tier == 3

        print("\n=== the ladder in action: ask the ring:5 question again ===")
        first = quotes[1]
        again = engine.quote(QuoteRequest(graph="ring:5"))
        print(f"first ask:  tier {first.tier} (measured), {first.latency_ms:.1f} ms")
        print(f"second ask: tier {again.tier} (cached),   {again.latency_ms:.1f} ms")
        assert (first.tier, again.tier) == (3, 2)
        assert again.digest() == first.digest()
        print("same digest both times — the tier is service metadata, "
              "never part of the answer")

        print("\n=== the ring:5 deposit schedule (Equations 1-2) ===")
        for entry in first.schedule:
            path = "->".join(entry.path) if entry.path else "-"
            print(
                f"  {entry.kind:10s} {entry.depositor:3s} "
                f"{entry.arc[0]}->{entry.arc[1]}  round {entry.round}  "
                f"amount {entry.amount:3d}  path {path}"
            )

        batch = quote_batch(engine, [request for _, request in BASKET])
        assert [q.digest() for q in batch] == [q.digest() for q in quotes]
        print(
            f"\nbatch of {len(batch)} quotes, digest "
            f"{batch_digest(batch)[:16]}... — every member byte-identical "
            "to its one-off quote"
        )


if __name__ == "__main__":
    main()
