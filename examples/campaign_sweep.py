"""A full adversarial campaign sweep over every protocol family.

Expands the default scenario matrix — (protocol family × premium/timeout/
graph schedule × adversary subset × named strategy × deviation round) —
and executes all of it through the campaign engine, twice: serially, then
sharded in two halves through the process-pool backend and recombined
with ``merge_reports``.  All paths must report zero property violations
and the *same* run digest, which is the engine's reproducibility
contract: a sharded campaign (even spread across hosts) proves it covered
exactly the same ground as a monolithic one.

Then it zooms into the paper's headline numbers: the per-round premium
transfers of the two-party swap (p_b to Alice when Bob reneges, net p_a to
Bob when Alice reneges), extracted straight from the campaign results.

Run with:  python examples/campaign_sweep.py
"""

from repro.campaign import (
    CampaignRunner,
    ScenarioMatrix,
    default_matrix,
    merge_reports,
)
from repro.checker import halt_strategies, properties as props
from repro.core.hedged_two_party import HedgedTwoPartySwap


def run_full_campaign() -> None:
    print("=== default adversarial campaign: all six protocol families ===")
    matrix = default_matrix()
    print(f"matrix: {len(matrix)} scenarios {matrix.block_sizes()}")
    serial = CampaignRunner(matrix, backend="serial").run()
    print("serial: ", serial.summary())
    shards = [
        CampaignRunner(
            default_matrix(), backend="process", workers=2, shard=(i, 2)
        ).run()
        for i in (1, 2)
    ]
    merged = merge_reports(shards)
    print("sharded:", merged.summary())
    assert serial.ok and merged.ok, "the hedged protocols must verify clean"
    assert serial.run_digest == merged.run_digest, (
        "merged shards must reproduce the unsharded digest byte for byte"
    )
    print(f"run digest (serial == merged shards): {serial.run_digest[:32]}…")
    for value, scenarios, violations in serial.axis_table("family"):
        print(f"  {value:<14} {scenarios:>5} scenarios  {violations} violations")


def sweep_two_party_deviation_points() -> None:
    print()
    print("=== two-party swap: compensation at every deviation round ===")
    horizon = HedgedTwoPartySwap().build().horizon
    matrix = ScenarioMatrix()
    matrix.add_block(
        family="two-party",
        schedule="p2:1",
        builder=lambda: HedgedTwoPartySwap().build(),
        properties=(props.no_stuck_escrow, props.two_party_hedged),
        strategies={p: halt_strategies(horizon) for p in ("Alice", "Bob")},
        include_compliant=False,
    )
    report = CampaignRunner(matrix).run()
    assert report.ok
    print(f"{'deviator':>8} {'round':>5} {'Alice':>6} {'Bob':>6}")
    for result in report.results:
        axes = dict(result.axes)
        nets = dict(result.premium_net)
        print(
            f"{axes['adversaries']:>8} {axes['round']:>5} "
            f"{nets['Alice']:>+6} {nets['Bob']:>+6}"
        )
    print("(Bob reneging mid-swap pays Alice p_b = 1; Alice reneging after")
    print(" Bob escrows forfeits p_a + p_b and recovers p_b: net p_a = 2 to Bob.)")


if __name__ == "__main__":
    run_full_campaign()
    sweep_two_party_deviation_points()
