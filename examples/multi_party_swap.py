"""The Figure 3 multi-party swap, hedged per §7.1.

Three parties swap on the digraph of Figure 3a — arcs (A,B), (B,A), (B,C),
(C,A) — with Alice as the single leader.  The example prints the premium
structure (Equations 1 and 2), runs the four-phase hedged protocol, then
replays it with Carol refusing to escrow to show the compensation flow of
Lemma 3.

Run with:  python examples/multi_party_swap.py
"""

from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.core.premiums import (
    escrow_premium_amounts,
    leader_redemption_total,
    redemption_premium_table,
)
from repro.graph.digraph import figure3_graph
from repro.parties.strategies import skip_methods
from repro.protocols.instance import execute


def show_premium_structure() -> None:
    graph = figure3_graph()
    print("=== premium structure on the Figure 3a digraph (p = 1) ===")
    print("redemption premiums for hashkey k_A (Equation 1):")
    for arc, paths in sorted(redemption_premium_table(graph, "A", 1).items()):
        for path, amount in sorted(paths.items()):
            print(f"  on {arc}: path {path} -> {amount}p")
    print(f"leader total R(A) = {leader_redemption_total(graph, 'A', 1)}p")
    print("escrow premiums (Equation 2):")
    for arc, amount in sorted(escrow_premium_amounts(graph, ('A',), 1).items()):
        print(f"  E{arc} = {amount}p")


def run_compliant() -> None:
    print("\n=== all compliant: four phases, everything redeemed ===")
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    result = execute(instance)
    outcome = extract_multi_party_outcome(instance, result)
    print("arc states:  ", outcome.arc_states)
    print("premium nets:", outcome.premium_net)
    assert outcome.all_redeemed


def run_with_sore_loser() -> None:
    print("\n=== Carol never escrows her principal (Lemma 3 scenario) ===")
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    result = execute(
        instance, {"C": lambda a: skip_methods(a, "escrow_principal")}
    )
    outcome = extract_multi_party_outcome(instance, result)
    print("arc states:  ", outcome.arc_states)
    print("premium nets:", outcome.premium_net)
    for party in ("A", "B"):
        assert outcome.safety_holds(party)
        assert outcome.hedged_holds(party)
    assert outcome.premium_net["C"] < 0
    print("compliant A and B are compensated; sore loser C pays.")


if __name__ == "__main__":
    show_premium_structure()
    run_compliant()
    run_with_sore_loser()
