"""Map where walking away stops paying: the deviation-profitability frontier.

The paper's §5.2 claim, quantified: a hedged premium of fraction π makes
abandoning a swap irrational for any relative price drop smaller than the
walk-forfeit π buys.  This example runs the rational-adversary ablation
engine on a compact grid — every protocol family, three premium fractions,
three shock sizes, both shock stages — and prints:

- the measured frontier π* per (family, stage, shock): the smallest swept
  premium at which the utility-driven pivot completes instead of walking,
- the deviation gain of each profitable walk (rational-arm utility minus
  comply-arm utility, both measured on live runs at post-shock prices),
- the digest contract: the same grid reduced from a serial run and from a
  two-shard merged run yields byte-identical frontier digests.

Run with:  python examples/deviation_frontier.py
"""

from repro.campaign import (
    AblationGrid,
    CampaignRunner,
    merge_reports,
    reduce_frontier,
)

GRID = AblationGrid(
    premium_fractions=(0.0, 0.02, 0.08),
    shock_fractions=(0.015, 0.045, 0.105),
)


def main() -> None:
    matrix = GRID.matrix()
    print(
        f"=== rational-adversary ablation: {len(matrix)} scenarios over "
        f"{len(matrix.families())} families ==="
    )
    report = CampaignRunner(matrix).run()
    assert report.ok, [v.message for v in report.violations]
    print(report.summary())
    frontier = reduce_frontier(report)
    print()
    print(frontier.table())
    print()

    print("=== the frontier in words ===")
    for row in frontier.rows:
        if row.stage != "staked":
            continue
        profitable = [c for c in row.cells if c.deviation_profitable]
        # show the *largest* premium the shock still defeats: there the walk
        # is both profitable and maximally compensated for the victim
        best = max(profitable, key=lambda c: c.pi, default=None)
        if row.pi_star is None:
            verdict = "no swept premium deters it"
        else:
            verdict = f"pi >= {row.pi_star:g} makes walking irrational"
        extra = (
            f"; at pi={best.pi:g} walking nets {best.deviation_gain:+.1f} "
            f"(victim compensated {best.victim_net})"
            if best is not None
            else ""
        )
        print(f"  {row.family:<12} drop {row.shock:g}: {verdict}{extra}")
    print()

    print("=== reproducibility: serial vs sharded-and-merged ===")
    shards = [
        CampaignRunner(GRID.matrix(), shard=(i, 2)).run() for i in (1, 2)
    ]
    merged_frontier = reduce_frontier(merge_reports(shards))
    assert merged_frontier.digest == frontier.digest
    print(f"frontier digest (serial) : {frontier.digest}")
    print(f"frontier digest (merged) : {merged_frontier.digest}")
    print("byte-identical: the frontier is a reproducible artifact.")


if __name__ == "__main__":
    main()
