"""Map where walking away stops paying: the deviation-profitability frontier.

The paper's §5.2 claim, quantified: a hedged premium of fraction π makes
abandoning a swap irrational for any relative price drop smaller than the
walk-forfeit π buys.  This example runs the rational-adversary ablation
engine on a compact grid — every protocol family, three premium fractions,
three shock sizes, both shock stages — and prints:

- the measured frontier π* per (family, stage, shock): the smallest swept
  premium at which the utility-driven pivot completes instead of walking,
- the deviation gain of each profitable walk (rational-arm utility minus
  comply-arm utility, both measured on live runs at post-shock prices),
- the *refined* frontier: adaptive bisection between the lattice points
  narrows π* to a continuous threshold within 1/64, recovering the §5.2
  closed forms instead of their staircase approximation,
- *coalition pricing*: adjacent ring members walking together, and the
  seller + buyer squeezing the broker — joint-utility pivots whose
  member-to-member forfeits deter nothing, so collusion always needs at
  least the single-pivot premium (and the broker's markup turns out to be
  un-hedgeable coalition rent),
- the digest contract: the same grid reduced from a serial run and from a
  two-shard merged run yields byte-identical frontier digests, and the
  refined digest is likewise backend-invariant.

Run with:  python examples/deviation_frontier.py
"""

from repro.campaign import (
    AblationGrid,
    CampaignRunner,
    merge_reports,
    reduce_frontier,
    refine_frontier,
)
from repro.campaign.ablation import closed_form_pi_star

GRID = AblationGrid(
    premium_fractions=(0.0, 0.02, 0.08),
    shock_fractions=(0.015, 0.045, 0.105),
)

COALITION_GRID = AblationGrid(
    families=("multi-party", "broker"),
    premium_fractions=(0.0, 0.02, 0.08),
    shock_fractions=(0.045,),
    stages=("staked",),
    coalitions=True,
)


def main() -> None:
    matrix = GRID.matrix()
    print(
        f"=== rational-adversary ablation: {len(matrix)} scenarios over "
        f"{len(matrix.families())} families ==="
    )
    report = CampaignRunner(matrix).run()
    assert report.ok, [v.message for v in report.violations]
    print(report.summary())
    frontier = reduce_frontier(report)
    print()
    print(frontier.table())
    print()

    print("=== the frontier in words ===")
    for row in frontier.rows:
        if row.stage != "staked":
            continue
        profitable = [c for c in row.cells if c.deviation_profitable]
        # show the *largest* premium the shock still defeats: there the walk
        # is both profitable and maximally compensated for the victim
        best = max(profitable, key=lambda c: c.pi, default=None)
        if row.pi_star is None:
            verdict = "no swept premium deters it"
        else:
            verdict = f"pi >= {row.pi_star:g} makes walking irrational"
        extra = (
            f"; at pi={best.pi:g} walking nets {best.deviation_gain:+.1f} "
            f"(victim compensated {best.victim_net})"
            if best is not None
            else ""
        )
        print(f"  {row.family:<12} drop {row.shock:g}: {verdict}{extra}")
    print()

    print("=== the refined frontier: bisecting the staircase ===")
    refined = refine_frontier(frontier)
    print(refined.summary())
    for row in refined.rows:
        if row.stage != "staked" or row.pi_star is None:
            continue
        closed = closed_form_pi_star(row.family, row.shock)
        # An upward-refined row had no deterring lattice point: the engine
        # doubled past the swept ceiling before bisecting.
        lattice = (
            f"{row.lattice_hi:g}" if row.lattice_hi is not None
            else "above the lattice"
        )
        print(
            f"  {row.family:<12} drop {row.shock:g}: lattice pi* "
            f"{lattice} -> refined {row.pi_star:g} "
            f"(closed form {closed:g}, {len(row.probes)} probes)"
        )
    print()

    print("=== pricing collusion: joint pivots ===")
    coalition_report = CampaignRunner(COALITION_GRID.matrix()).run()
    assert coalition_report.ok
    coalition_frontier = reduce_frontier(coalition_report)
    for row in coalition_frontier.coalition_rows:
        single = coalition_frontier.row(row.family, row.stage, row.shock)
        priced = (
            f"pi* {row.pi_star:g}" if row.pi_star is not None
            else "undeterred at every swept premium"
        )
        print(
            f"  {row.family:<12} {row.coalition:<14} drop {row.shock:g}: "
            f"{priced} (single pivot: {single.pi_star:g})"
        )
    print("  member-to-member forfeits deter nothing, so a coalition never")
    print("  prices below its single pivot; the broker's markup is rent no")
    print("  swept premium hedges against seller+buyer collusion.")
    print()

    print("=== reproducibility: serial vs sharded-and-merged ===")
    shards = [
        CampaignRunner(GRID.matrix(), shard=(i, 2)).run() for i in (1, 2)
    ]
    merged_frontier = reduce_frontier(merge_reports(shards))
    assert merged_frontier.digest == frontier.digest
    refined_from_merged = refine_frontier(merged_frontier)
    assert refined_from_merged.digest == refined.digest
    print(f"frontier digest (serial) : {frontier.digest}")
    print(f"frontier digest (merged) : {merged_frontier.digest}")
    print(f"refined digest (both)    : {refined.digest}")
    print("byte-identical: the refined frontier is a reproducible artifact.")


if __name__ == "__main__":
    main()
