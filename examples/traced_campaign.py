"""Observability without observer effect: tracing a campaign run.

The :mod:`repro.obs` layer instruments the whole campaign stack — nested
phase spans, cache and kernel counters, per-worker samples, streaming
progress — while staying provably digest-inert: a traced run produces
byte-identical scenario/run/frontier digests to an untraced one.  This
example shows the full loop:

- run an ablation experiment untraced and record its frontier digest,
- re-run it with a ``Tracer`` writing a JSONL trace file and a progress
  callback streaming done/total/ETA, and check the digests match,
- validate the trace against the committed ``trace-schema.json`` and
  summarize it: phase breakdown (with the ≥95% wall-clock coverage the
  layer guarantees), slowest blocks, kernel calibration/replay counts,
- pull ``phase_fragments`` off the tracer's metrics — the same structure
  ``benchmarks.tables.write_bench_json`` embeds into BENCH baselines.

The CLI exposes the same switches: ``python -m repro.cli run ablate
--trace trace.jsonl --progress`` then ``python -m repro.obs summarize
trace.jsonl``.

Run with:  python examples/traced_campaign.py
"""

import tempfile
from pathlib import Path

from repro.campaign import Experiment, ablate_spec
from repro.obs import (
    Tracer,
    TraceWriter,
    phase_fragments,
    summarize_trace,
    validate_trace_file,
)

GRID = dict(
    families=("two-party", "broker"),
    premium_fractions=(0.0, 0.02, 0.05),
    shock_fractions=(0.015, 0.045),
    stages=("staked",),
)


def main() -> None:
    spec = ablate_spec(**GRID)

    print("=== untraced reference run ===")
    reference = Experiment(spec).run()
    print(f"frontier digest: {reference.frontier.digest[:16]}…")

    print()
    print("=== the same spec, traced + progress-streamed ===")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        tracer = Tracer(TraceWriter(trace_path))
        progress_marks = []

        def on_progress(update):
            progress_marks.append(update)

        traced = Experiment(spec, tracer=tracer, progress=on_progress).run()
        tracer.close()

        match = traced.frontier.digest == reference.frontier.digest
        print(f"frontier digest: {traced.frontier.digest[:16]}… "
              f"(identical to untraced: {match})")
        assert match, "telemetry must never perturb a digest"
        final = progress_marks[-1]
        print(f"progress stream: {len(progress_marks)} throttled updates, "
              f"final {final.done}/{final.total}")

        events = validate_trace_file(trace_path)
        print(f"trace validates against trace-schema.json: {events} events")

        print()
        print("=== python -m repro.obs summarize, as a library call ===")
        summary = summarize_trace(trace_path)
        print(summary.render(top_blocks=3))
        assert summary.coverage >= 0.95

        print()
        print("=== phase fragments (what BENCH baselines embed) ===")
        for phase, stats in sorted(phase_fragments(
            tracer.metrics.snapshot()
        ).items()):
            print(f"  {phase:<24} x{int(stats['count'])}  "
                  f"{stats['total_seconds']:.4f}s")


if __name__ == "__main__":
    main()
