"""One spec, one entry point: the declarative experiment workflow.

Every engine in the repro — the adversarial campaign, the rational-
adversary ablation lattice, the bisected frontier refinement — runs from
the same JSON-serializable, digest-covered ``ExperimentSpec``.  This
example shows the full loop:

- build a spec (the same object ``python -m repro.cli spec ablate ...``
  emits), round-trip it through JSON, and read its identity digest,
- run it cold through the ``Experiment`` facade with the incremental
  result cache attached, collecting reports that all speak the common
  Report protocol (``kind`` + ``digest`` + ``to_json``/``from_json``),
- run it warm: every already-verified scenario block is served from the
  store — the hit-rate is 100% and the digests are byte-identical, which
  is what makes 10^5+-scenario matrices re-runnable after small edits,
- swap the ``engine``: ablation specs default to the vectorized payoff
  kernels (``engine="kernel"``); ``engine="simulator"`` replays the same
  scenarios through the full simulator — the audit path CI holds the
  kernels to — and reproduces every digest byte-identically,
- pin the digests into the spec's ``expect`` block, turning the spec into
  a self-verifying, shippable artifact (this is what a multi-host driver
  would send to each worker).

Run with:  python examples/experiment_spec.py
"""

import tempfile
from dataclasses import replace

from repro.campaign import (
    Experiment,
    ExperimentSpec,
    ResultCache,
    ablate_spec,
    report_from_json,
)


def main() -> None:
    print("=== the spec: a serializable, digest-covered experiment ===")
    spec = ablate_spec(
        families=("two-party", "broker"),
        premium_fractions=(0.0, 0.02, 0.05),
        shock_fractions=(0.045,),
        stages=("staked",),
    )
    restored = ExperimentSpec.from_json(spec.to_json())
    assert restored == spec and restored.digest() == spec.digest()
    print(f"kind:   {spec.kind}")
    print(f"matrix: factory={spec.matrix.factory!r} "
          f"({len(dict(spec.matrix.kwargs))} grid knobs)")
    print(f"digest: {spec.digest()}")
    print("the digest covers only what determines results — a pooled or")
    print("sharded-execution variant of this spec shares the identity.")
    print()

    print("=== cold run: facade dispatch + cache population ===")
    store = ResultCache(tempfile.mkdtemp(prefix="repro-spec-cache-"))
    cold = Experiment(spec, cache=store).run()
    print(cold.campaign.summary())
    print(cold.frontier.summary())
    print(f"frontier digest: {cold.frontier.digest}")
    print()

    print("=== warm run: served from the incremental result cache ===")
    warm = Experiment(spec, cache=store).run()
    assert warm.campaign.run_digest == cold.campaign.run_digest
    assert warm.frontier.digest == cold.frontier.digest
    print(warm.campaign.summary())
    print(f"hit-rate {warm.campaign.cache_hit_rate:.0%} "
          f"({warm.campaign.cache_hits}/{warm.campaign.scenarios}), "
          "digests byte-identical")
    print()

    print("=== the kernel engine vs the simulator audit path ===")
    assert spec.engine == "kernel"  # ablation specs default to the kernels
    audit = Experiment(replace(spec, engine="simulator")).run()
    assert audit.campaign.run_digest == cold.campaign.run_digest
    assert audit.frontier.digest == cold.frontier.digest
    print("the full simulator reproduced the kernel engine's digests")
    print("byte-identically — the parity CI enforces this on every push.")
    print()

    print("=== the common Report protocol ===")
    for report in warm.reports:
        restored = report_from_json(report.to_json())
        assert restored.digest == report.digest
        print(f"  kind={type(report).kind:<10} digest={report.digest[:16]}… "
              "(JSON round-trip verified)")
    print()

    print("=== a self-verifying spec: pin the expected digests ===")
    pinned = replace(
        spec,
        expect=(
            ("campaign", cold.campaign.run_digest),
            ("frontier", cold.frontier.digest),
        ),
    )
    Experiment(pinned, cache=store).run()  # raises on any digest mismatch
    assert pinned.digest() == spec.digest()  # expectations are not identity
    print("re-run under pinned expectations passed — this spec file is now")
    print("a replayable, self-checking experiment artifact.")


if __name__ == "__main__":
    main()
