"""Quickstart: run a hedged two-party atomic swap (Figure 1).

Alice trades 100 apricot tokens for Bob's 100 banana tokens.  Premiums
(p_a = 2, p_b = 1 native units) protect both sides from sore-loser attacks:
if either party walks away after the other escrows, the victim is
compensated.

Run with:  python examples/quickstart.py
"""

from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.protocols.instance import execute
from repro.sim.trace import render_lanes


def main() -> None:
    spec = HedgedTwoPartySpec(amount_a=100, amount_b=100, premium_a=2, premium_b=1)
    instance = HedgedTwoPartySwap(spec).build()

    print("=== hedged two-party swap, both parties compliant (Figure 1) ===")
    result = execute(instance)
    print(render_lanes(result, width=34))

    outcome = extract_two_party_outcome(instance, result)
    print("\nswapped:            ", outcome.swapped)
    print("Alice premium net:  ", outcome.alice_premium_net)
    print("Bob premium net:    ", outcome.bob_premium_net)
    assert outcome.swapped
    assert outcome.alice_premium_net == 0 and outcome.bob_premium_net == 0
    print("\nboth principals swapped, both premiums refunded — as in §5.2.")


if __name__ == "__main__":
    main()
