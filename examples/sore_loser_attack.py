"""The sore-loser attack, before and after hedging (§1, §5).

Scenario: after Alice escrows her tokens, banana tokens drop in value and
Bob simply walks away.  In the base HTLC protocol Alice's tokens sit locked
for 3Δ and Bob pays nothing.  In the hedged protocol the same walk-away
costs Bob his premium, which compensates Alice.

Run with:  python examples/sore_loser_attack.py
"""

from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.strategies import halt_at
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import execute


def attack_base() -> None:
    print("=== base §5.1 swap: Bob walks away after Alice escrows ===")
    instance = BaseTwoPartySwap().build()
    result = execute(instance, {"Bob": lambda a: halt_at(a, 1)})
    outcome = extract_two_party_outcome(instance, result)
    htlc = instance.contract("apricot_htlc")
    locked = htlc.timelock - htlc.escrowed_at
    print(f"swap completed:        {outcome.swapped}")
    print(f"Alice's tokens locked: {locked} Δ (refunded afterwards)")
    print(f"Bob's penalty:         {-outcome.bob_premium_net} (— he pays nothing)")
    assert locked == 3 and outcome.bob_premium_net == 0


def attack_hedged() -> None:
    print("\n=== hedged §5.2 swap: Bob walks away after Alice escrows ===")
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=1)
    instance = HedgedTwoPartySwap(spec).build()
    result = execute(instance, {"Bob": lambda a: halt_at(a, 3)})
    outcome = extract_two_party_outcome(instance, result)
    print(f"swap completed:        {outcome.swapped}")
    print(f"Alice keeps principal: {outcome.alice_kept_tokens}")
    print(f"Alice's compensation:  {outcome.alice_premium_net} (= p_b)")
    print(f"Bob's penalty:         {-outcome.bob_premium_net}")
    assert outcome.alice_premium_net == spec.premium_b


def attack_hedged_reverse() -> None:
    print("\n=== hedged swap: Alice walks away after Bob escrows ===")
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=1)
    instance = HedgedTwoPartySwap(spec).build()
    result = execute(instance, {"Alice": lambda a: halt_at(a, 4)})
    outcome = extract_two_party_outcome(instance, result)
    print(f"Bob's compensation:    {outcome.bob_premium_net} (= p_a)")
    print(f"Alice's penalty:       {-outcome.alice_premium_net}")
    assert outcome.bob_premium_net == spec.premium_a


if __name__ == "__main__":
    attack_base()
    attack_hedged()
    attack_hedged_reverse()
    print("\nhedging turned an unpunished griefing attack into a paid option.")
