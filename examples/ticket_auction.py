"""The hedged auction (§9): honest runs, cheats, and compensation.

Alice auctions tickets to Bob and Carol.  Bidders pay no premiums; Alice
endows n·p which pays out p per bidder if she wrecks the auction.  The
challenge phase's hashkey forwarding (Lemma 7) makes single-chain
declarations heal, and Lemma 8 keeps every compliant bidder's coins safe.

Run with:  python examples/ticket_auction.py
"""

from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    HedgedAuction,
    extract_auction_outcome,
)
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


def run(strategy, deviations=None, spec=None, label=""):
    instance = HedgedAuction(spec=spec, strategy=strategy).build()
    result = execute(instance, deviations or {})
    out = extract_auction_outcome(instance, result)
    print(f"\n=== {label or strategy.value} ===")
    print(f"coin contract: {out.coin_outcome}; tickets to: {out.tickets_to or '(refunded)'}")
    print(f"coin deltas:   {out.coins_delta}")
    print(f"premium nets:  {out.premium_net}")
    return out


if __name__ == "__main__":
    out = run(AuctioneerStrategy.HONEST, label="honest auction (Bob bids 120, Carol 90)")
    assert out.tickets_to == "Bob" and out.coins_delta["Alice"] == 120

    out = run(
        AuctioneerStrategy.PUBLISH_TICKET_ONLY,
        label="Alice declares on one chain only — bidders forward (Lemma 7)",
    )
    assert out.coin_outcome == "completed"

    out = run(
        AuctioneerStrategy.PUBLISH_LOSER,
        label="Alice cheats: declares the losing bidder",
    )
    assert out.coin_outcome == "refunded"
    assert out.premium_net["Bob"] == 1 and out.premium_net["Carol"] == 1

    out = run(
        AuctioneerStrategy.ABANDON,
        label="Alice abandons mid-auction — bidders compensated",
    )
    assert out.premium_net["Alice"] == -2

    out = run(
        AuctioneerStrategy.HONEST,
        deviations={"Carol": lambda a: halt_at(a, 2)},
        label="losing bidder sulks — she has no vote, auction completes",
    )
    assert out.tickets_to == "Bob"

    spec = AuctionSpec(
        bidders=("Bob", "Carol", "Dave"),
        bids={"Bob": 100, "Carol": 150, "Dave": 50},
        premium=2,
    )
    out = run(AuctioneerStrategy.HONEST, spec=spec, label="three bidders, p = 2")
    assert out.tickets_to == "Carol"

    print("\nno compliant bidder's bid was stolen in any scenario (Lemma 8).")
