"""Model-check the hedged protocols (§10) and price a rational attack.

Runs the exhaustive deviation-space checker over the two-party and
Figure-3a hedged swaps — every halt round, every action-subset skip, every
timing lag, for every (pair of) adversaries — then demonstrates the
economic deterrent on a live run: a rational Bob facing a mid-swap price
shock completes anyway because walking costs him the premium.

Run with:  python examples/verify_protocols.py
"""

from repro.checker import ModelChecker, full_strategy_space, properties as props
from repro.core.hedged_multi_party import HedgedMultiPartySwap
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.graph.digraph import figure3_graph
from repro.parties.rational import price_shock, rational_bob
from repro.protocols.instance import execute


def check_two_party() -> None:
    print("=== exhaustive check: hedged two-party swap ===")
    space = full_strategy_space(8, ("deposit_premium", "escrow_principal", "redeem"))
    checker = ModelChecker(
        builder=lambda: HedgedTwoPartySwap().build(),
        properties=[props.no_stuck_escrow, props.two_party_hedged],
        strategies={"Alice": space, "Bob": space},
        max_adversaries=2,
    )
    report = checker.run()
    print(report.summary())
    assert report.ok


def check_figure3() -> None:
    print("\n=== exhaustive check: Figure 3a hedged multi-party swap ===")
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    methods = (
        "deposit_escrow_premium", "deposit_redemption_premium",
        "escrow_principal", "present_hashkey",
    )
    checker = ModelChecker(
        builder=lambda: HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build(),
        properties=[props.no_stuck_escrow, props.multi_party_lemmas],
        strategies={p: full_strategy_space(instance.horizon, methods) for p in "ABC"},
        max_adversaries=1,
    )
    report = checker.run()
    print(report.summary())
    assert report.ok


def rational_attack() -> None:
    print("\n=== a rational Bob under a 1% price shock (p_b = 2%) ===")
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)
    instance = HedgedTwoPartySwap(spec).build()
    transform = lambda actor: rational_bob(
        actor, spec, price_shock(1.0, 0.01, at_height=3),
        premium_contract=instance.contracts["apricot_escrow"],
    )
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    print(f"swap completed: {out.swapped} — walking would have cost Bob more "
          f"than the 1% move was worth.")
    assert out.swapped


if __name__ == "__main__":
    check_two_party()
    check_figure3()
    rational_attack()
    print("\nall properties verified over the full adversary space.")
