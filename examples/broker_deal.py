"""Brokered commerce (§8, Figure 4), hedged.

Alice brokers: Bob sells tickets for 100 coins, Carol pays 101, Alice keeps
the 1-coin markup — using Carol's coins to buy Bob's tickets without owning
either asset.  The example prints the §8.2 premium tables, runs the happy
path, then shows the two payoffs the paper calls out: Bob omitting his
escrow (B1) and Bob withholding his hashkey (B2).

Run with:  python examples/broker_deal.py
"""

from repro.core.hedged_broker import (
    HedgedBrokerDeal,
    broker_premium_tables,
    extract_broker_outcome,
)
from repro.parties.strategies import halt_at, skip_methods
from repro.protocols.base_broker import BrokerSpec
from repro.protocols.instance import execute


def show_tables() -> None:
    spec = BrokerSpec()
    tables = broker_premium_tables(spec, premium=1, optimize=True)
    print("=== §8.2 premium tables (p = 1, footnote-7 optimized) ===")
    print("trading premiums:", {f"T{k}": v for k, v in tables["trading"].items()})
    print("escrow premiums: ", {f"E{k}": v for k, v in tables["escrow"].items()})
    print("per-arc activation sets:", {
        str(arc): sorted(keys) for arc, keys in tables["required_keys"].items()
    })


def happy_path() -> None:
    print("\n=== compliant deal ===")
    instance = HedgedBrokerDeal(premium=1).build()
    result = execute(instance)
    out = extract_broker_outcome(instance, result)
    print("completed:", out.completed)
    print("coins:    ", out.coins_delta, "(Alice keeps the markup)")
    print("tickets:  ", out.tickets_delta)
    print("premiums: ", out.premium_net)
    assert out.completed


def bob_omits_escrow() -> None:
    print("\n=== Bob omits B1 (never escrows his tickets) ===")
    instance = HedgedBrokerDeal(premium=1).build()
    result = execute(instance, {"Bob": lambda a: skip_methods(a, "escrow_asset")})
    out = extract_broker_outcome(instance, result)
    print("premiums:", out.premium_net)
    assert out.premium_net["Bob"] < 0
    assert out.premium_net["Carol"] > 0 and out.premium_net["Alice"] >= 0
    print("'Bob pays a premium to Carol and to Alice' — §8.2.")


def bob_withholds_key() -> None:
    print("\n=== Bob completes B1 but omits B2 (withholds his hashkey) ===")
    instance = HedgedBrokerDeal(premium=1).build()
    result = execute(instance, {"Bob": lambda a: halt_at(a, 7)})
    out = extract_broker_outcome(instance, result)
    print("premiums:", out.premium_net)
    assert out.premium_net["Bob"] < 0 and out.premium_net["Carol"] > 0
    print("'he pays a premium to Carol' — §8.2.")


def resale_chain() -> None:
    print("\n=== §8.2 extension: a two-broker resale chain ===")
    from repro.core.multi_round_deal import DealSpec, MultiRoundDeal, extract_deal_outcome

    spec = DealSpec()  # Seller -> Ann -> Mike -> Buyer
    instance = MultiRoundDeal(spec, premium=1).build()
    result = execute(instance)
    out = extract_deal_outcome(instance, result)
    print("completed:", out.completed, f"(rounds traded: {out.rounds_traded})")
    print("coins:    ", out.coins_delta, "(each broker keeps a margin)")
    print("premiums: ", out.premium_net)
    assert out.completed


if __name__ == "__main__":
    show_tables()
    happy_path()
    bob_omits_escrow()
    bob_withholds_key()
    resale_chain()
