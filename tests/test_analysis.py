"""Tests for the analysis layer: CRR pricing, GBM, the deviation game,
and the measured sore-loser exposure tables."""

import math

import numpy as np
import pytest

from repro.analysis.game import GameResult, SwapGame, success_table
from repro.analysis.market import gbm_paths, gbm_terminal
from repro.analysis.options import crr_price, suggest_premium
from repro.analysis.risk import sore_loser_exposure, worst_uncompensated_lockup
from repro.errors import ProtocolError


# ----------------------------------------------------------------------
# CRR option pricing
# ----------------------------------------------------------------------
def test_crr_converges_to_black_scholes():
    """ATM European call, sigma=0.2, T=1: Black-Scholes gives ~7.97."""
    price = crr_price(100, 100, sigma=0.2, maturity=1.0, rate=0.0, steps=500)
    assert abs(price - 7.97) < 0.1


def test_crr_put_call_parity():
    """C - P = S - K e^{-rT} for European options."""
    s, k, r, t = 100.0, 95.0, 0.03, 0.7
    call = crr_price(s, k, 0.3, t, r, steps=400, kind="call")
    put = crr_price(s, k, 0.3, t, r, steps=400, kind="put")
    assert abs((call - put) - (s - k * math.exp(-r * t))) < 0.05


def test_crr_american_geq_european():
    put_eu = crr_price(100, 110, 0.25, 1.0, 0.05, kind="put", american=False)
    put_am = crr_price(100, 110, 0.25, 1.0, 0.05, kind="put", american=True)
    assert put_am >= put_eu


def test_crr_american_put_geq_intrinsic():
    price = crr_price(80, 100, 0.2, 0.5, 0.02, kind="put", american=True)
    assert price >= 20.0  # immediate exercise value


def test_crr_increases_with_volatility():
    low = crr_price(100, 100, 0.1, 1.0)
    high = crr_price(100, 100, 0.6, 1.0)
    assert high > low


def test_crr_zero_maturity_is_intrinsic():
    assert crr_price(105, 100, 0.5, 0.0) == 5.0
    assert crr_price(95, 100, 0.5, 0.0, kind="put") == 5.0


def test_crr_rejects_bad_inputs():
    with pytest.raises(ProtocolError):
        crr_price(0, 100, 0.2, 1.0)
    with pytest.raises(ProtocolError):
        crr_price(100, 100, 0.2, 1.0, steps=0)
    with pytest.raises(ProtocolError):
        crr_price(100, 100, 0.2, 1.0, kind="straddle")


def test_suggest_premium_scales_with_lockup_and_vol():
    base = suggest_premium(100, 0.8, lockup_deltas=3)
    longer = suggest_premium(100, 0.8, lockup_deltas=6)
    wilder = suggest_premium(100, 1.6, lockup_deltas=3)
    assert longer > base
    assert wilder > base
    assert 0 < base < 100


# ----------------------------------------------------------------------
# GBM market
# ----------------------------------------------------------------------
def test_gbm_shapes_and_start():
    paths = gbm_paths(1.0, 0.0, 0.5, steps=10, dt=1 / 365, n_paths=50, seed=1)
    assert paths.shape == (50, 11)
    assert np.allclose(paths[:, 0], 1.0)
    assert (paths > 0).all()


def test_gbm_deterministic_by_seed():
    a = gbm_paths(1.0, 0.0, 0.5, 5, 1 / 365, 10, seed=42)
    b = gbm_paths(1.0, 0.0, 0.5, 5, 1 / 365, 10, seed=42)
    c = gbm_paths(1.0, 0.0, 0.5, 5, 1 / 365, 10, seed=43)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_gbm_terminal_moments():
    """E[S_T] = S0 e^{mu T} for GBM."""
    term = gbm_terminal(1.0, 0.1, 0.3, horizon=1.0, n_paths=200_000, seed=3)
    assert abs(term.mean() - math.exp(0.1)) < 0.01


# ----------------------------------------------------------------------
# the deviation game (EXP-G1)
# ----------------------------------------------------------------------
def test_premiums_raise_success_rate():
    base = SwapGame(sigma_annual=1.0, premium_fraction=0.0, n_paths=8000).play()
    hedged = SwapGame(sigma_annual=1.0, premium_fraction=0.05, n_paths=8000).play()
    assert hedged.success_rate > base.success_rate
    assert hedged.bob_defection_rate < base.bob_defection_rate


def test_base_success_rate_is_low():
    """With zero premium any adverse move triggers defection (Xu et al.)."""
    base = SwapGame(sigma_annual=0.8, premium_fraction=0.0, n_paths=8000).play()
    assert base.success_rate < 0.3


def test_large_premium_approaches_certainty():
    game = SwapGame(sigma_annual=0.3, premium_fraction=0.5, n_paths=8000).play()
    assert game.success_rate > 0.99


def test_success_table_grid():
    rows = success_table([0.5, 1.0], [0.0, 0.02], n_paths=2000)
    assert len(rows) == 4
    assert all(isinstance(r, GameResult) for r in rows)
    assert len(rows[0].row()) == 5


def test_residual_loss_shrinks_with_premium():
    lo = SwapGame(sigma_annual=1.0, premium_fraction=0.0, n_paths=8000).play()
    hi = SwapGame(sigma_annual=1.0, premium_fraction=0.10, n_paths=8000).play()
    assert hi.mean_compliant_loss < lo.mean_compliant_loss


# ----------------------------------------------------------------------
# measured sore-loser exposure (EXP-T1)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def exposure_rows():
    return sore_loser_exposure(premium_a=2, premium_b=1)


def test_base_protocol_has_uncompensated_lockups(exposure_rows):
    base = [r for r in exposure_rows if r.protocol == "base"]
    assert worst_uncompensated_lockup(exposure_rows, "base") > 0
    assert all(r.deviator_penalty == 0 for r in base)


def test_hedged_protocol_compensates_every_lockup(exposure_rows):
    hedged = [r for r in exposure_rows if r.protocol == "hedged"]
    for row in hedged:
        if row.victim_lockup > 0:
            assert row.victim_compensation > 0, row
            assert row.deviator_penalty > 0, row


def test_exposure_rows_cover_both_deviators(exposure_rows):
    deviators = {(r.protocol, r.deviator) for r in exposure_rows}
    assert ("base", "Alice") in deviators and ("base", "Bob") in deviators
    assert ("hedged", "Alice") in deviators and ("hedged", "Bob") in deviators
