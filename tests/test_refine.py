"""The frontier refinement engine and its satellite contracts (ISSUE 4).

Pins:

- **bisection convergence**: the refined π* brackets each family's §5.2
  closed-form deterrence threshold (two-party ``p_b``, ring ``4p``, broker
  ``3p`` — escrow-then-withhold — auction ``n·p``) within the tolerance,
- **dense stage sweep**: ``stages=("all",)`` produces one arm per protocol
  round for every family, charting deterrence decay round by round, with
  the broker's binding escrow-then-withhold-key deviation *emerging* from
  the per-round utility rule rather than being hard-coded,
- **coalition pivots**: the named two-party coalitions price a collusive
  π* that is never below the single-pivot threshold (member-to-member
  forfeits deter nothing),
- **digest discipline**: refined digests are byte-identical across serial
  probes, pooled probes, and refinement of a shard-merged lattice, and
  survive a JSON round trip with tamper detection,
- **canonical floats**: one normalization point for fraction axes (repr
  stability, ``-0.0`` collapse, no six-digit truncation).
"""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    WorkerPool,
    ablation_cell,
    ablation_matrix,
    merge_reports,
    reduce_frontier,
    refine_frontier,
)
from repro.campaign.ablation import (
    ABLATION_COALITIONS,
    ABLATION_FAMILIES,
    DEFAULT_TOL,
    RefinedFrontierReport,
    closed_form_pi_star,
    premium_base,
)
from repro.campaign.canon import canon_float, fmt_fraction

LATTICE = (0.0, 0.02, 0.05, 0.08)
SHOCK = 0.045


def lattice_frontier(families, shocks=(SHOCK,), stages=("staked",), **kwargs):
    matrix = ablation_matrix(
        families=families,
        premium_fractions=LATTICE,
        shock_fractions=shocks,
        stages=stages,
        **kwargs,
    )
    report = CampaignRunner(matrix).run()
    assert report.ok, [f"{v.scenario}: {v.message}" for v in report.violations]
    return reduce_frontier(report)


# ----------------------------------------------------------------------
# bisection convergence to the closed forms (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ABLATION_FAMILIES)
@pytest.mark.parametrize("shock", [0.015, 0.045])
def test_refined_pi_star_brackets_the_closed_form_within_tol(family, shock):
    refined = refine_frontier(lattice_frontier((family,), shocks=(shock,)))
    row = refined.row(family, "staked", shock)
    closed = closed_form_pi_star(family, shock)
    assert row.converged, row
    assert row.bracket_width <= DEFAULT_TOL
    assert abs(row.pi_star - closed) <= DEFAULT_TOL, (row, closed)
    # the measured boundary sits inside the final bracket, which sits
    # within half a premium quantization unit of the closed form
    quantum = 0.5 / premium_base(family)
    assert row.pi_lo - quantum <= closed <= row.pi_hi + quantum, (row, closed)


def test_tighter_tolerance_takes_more_probes_and_narrows_the_bracket():
    frontier = lattice_frontier(("two-party",))
    coarse = refine_frontier(frontier, tol=DEFAULT_TOL)
    fine = refine_frontier(frontier, tol=DEFAULT_TOL / 4)
    c_row, f_row = coarse.rows[0], fine.rows[0]
    assert f_row.bracket_width <= DEFAULT_TOL / 4 < c_row.bracket_width + 1e-12
    assert f_row.iterations > c_row.iterations
    assert abs(f_row.pi_star - closed_form_pi_star("two-party", SHOCK)) <= (
        DEFAULT_TOL / 4 + 0.5 / premium_base("two-party")
    )


def test_undeterred_and_trivially_deterred_rows_carry_through():
    # pre-stake: walking is free, so the upward expansion probes to the
    # ceiling and *confirms* undeterred instead of assuming it
    from repro.campaign.ablation import EXPAND_CEILING

    refined = refine_frontier(
        lattice_frontier(("two-party",), stages=("pre-stake",))
    )
    row = refined.rows[0]
    assert not row.deterred and row.pi_star is None
    assert row.probes and all(probe.cell.walked for probe in row.probes)
    assert row.pi_lo == EXPAND_CEILING  # walked all the way up
    assert row.probes[-1].cell.pi == EXPAND_CEILING
    # a late-round shock deters even the unhedged run: π* = 0, no probes
    late = refine_frontier(
        lattice_frontier(("two-party",), stages=("round:6",))
    )
    assert late.rows[0].pi_star == 0.0
    assert late.rows[0].converged and not late.rows[0].probes


def test_refine_extends_the_bracket_upward_when_the_lattice_ceiling_walks():
    # ROADMAP satellite: two-party at s = 0.105 with premiums <= 0.08 walks
    # at every lattice point; the engine doubles past the ceiling, finds a
    # deterring probe, and bisects to the closed form instead of carrying
    # the row through unrefined.
    shock = 0.105
    frontier = lattice_frontier(("two-party",), shocks=(shock,))
    assert frontier.rows[0].pi_star is None  # lattice ceiling still walks
    refined = refine_frontier(frontier)
    row = refined.rows[0]
    assert row.lattice_hi is None and row.deterred and row.converged
    closed = closed_form_pi_star("two-party", shock)
    assert abs(row.pi_star - closed) <= DEFAULT_TOL + 0.5 / premium_base(
        "two-party"
    )
    # the first expansion probe doubles the lattice ceiling
    assert row.probes[0].cell.pi == 2 * max(LATTICE)


def test_refine_opens_the_bracket_at_zero_when_the_lattice_floor_deters():
    # sweep only premiums that deter: the engine probes π = 0 itself
    matrix = ablation_matrix(
        families=("two-party",),
        premium_fractions=(0.05, 0.08),
        shock_fractions=(SHOCK,),
        stages=("staked",),
    )
    report = CampaignRunner(matrix).run()
    frontier = reduce_frontier(report)
    assert frontier.rows[0].pi_star == 0.05  # lattice has no walking point
    refined = refine_frontier(frontier)
    row = refined.rows[0]
    assert row.probes[0].cell.pi == 0.0 and row.probes[0].cell.walked
    assert row.converged
    assert abs(row.pi_star - closed_form_pi_star("two-party", SHOCK)) <= (
        DEFAULT_TOL + 0.5 / premium_base("two-party")
    )


def test_refine_rejects_partial_frontiers_and_bad_tolerances():
    from dataclasses import replace

    frontier = lattice_frontier(("auction",))
    with pytest.raises(ValueError, match="tol must be positive"):
        refine_frontier(frontier, tol=0.0)
    partial = replace(
        frontier, complete=False, scenarios=frontier.scenarios - 1
    )
    with pytest.raises(ValueError, match="full-coverage"):
        refine_frontier(partial)


# ----------------------------------------------------------------------
# dense per-round stage sweep (acceptance criterion)
# ----------------------------------------------------------------------
def _family_horizon(family: str) -> int:
    if family == "two-party":
        from repro.core.hedged_two_party import HedgedTwoPartySwap

        return HedgedTwoPartySwap().build().horizon
    if family == "multi-party":
        from repro.core.hedged_multi_party import HedgedMultiPartySwap
        from repro.graph.digraph import ring_graph

        return HedgedMultiPartySwap(
            graph=ring_graph(3), leaders=("P0",)
        ).build().horizon
    if family == "broker":
        from repro.core.hedged_broker import HedgedBrokerDeal

        return HedgedBrokerDeal().build().horizon
    from repro.core.hedged_auction import HedgedAuction

    return HedgedAuction().build().horizon


@pytest.mark.parametrize("family", ABLATION_FAMILIES)
def test_stage_all_sweeps_every_protocol_round(family):
    matrix = ablation_matrix(
        families=(family,),
        premium_fractions=(0.0,),
        shock_fractions=(SHOCK,),
        stages=("all",),
    )
    stages = {
        dict(block.extra_axes)["stage"]: int(
            dict(block.extra_axes)["shock_height"]
        )
        for block in matrix.blocks
    }
    horizon = _family_horizon(family)
    assert stages == {f"round:{h}": h for h in range(horizon)}


def test_two_party_deterrence_decays_round_by_round():
    frontier = lattice_frontier(("two-party",), stages=("all",))
    by_round = {
        int(row.stage.split(":")[1]): row.pi_star for row in frontier.rows
    }
    horizon = _family_horizon("two-party")
    assert set(by_round) == set(range(horizon))
    assert frontier.stages("two-party") == tuple(
        f"round:{h}" for h in sorted(by_round)
    )
    # before Bob stakes anything (premium lands at height 2) walking is
    # free; in the staked window the paper's premium deters; once only
    # collection remains even π = 0 completes
    assert by_round[0] is None and by_round[1] is None
    assert by_round[2] == 0.05 and by_round[3] == 0.05
    assert all(by_round[h] == 0.0 for h in range(4, horizon))


def test_broker_binding_stage_is_escrow_then_withhold_not_hardcoded():
    """Every deterred mid-protocol round prices at the 3p escrow-then-
    withhold staircase — including rounds where the naive E+T stake is far
    larger — because the per-round rule finds the cheaper later walk."""
    frontier = lattice_frontier(("broker",), stages=("all",))
    closed = closed_form_pi_star("broker", SHOCK)
    staircase = min(pi for pi in LATTICE if pi > closed)
    deterred = {
        int(row.stage.split(":")[1]): row.pi_star
        for row in frontier.rows
        if row.pi_star not in (None, 0.0)
    }
    assert deterred, "no binding window measured"
    assert set(deterred.values()) == {staircase}
    # the binding window spans both pre-escrow and post-escrow rounds
    from repro.contracts.broker import BrokerDeadlines

    deadlines = BrokerDeadlines.hedged()
    assert min(deterred) < deadlines.escrow <= max(deterred)


def test_named_stages_and_round_aliases_coexist():
    matrix = ablation_matrix(
        families=("two-party",),
        premium_fractions=(0.05,),
        shock_fractions=(SHOCK,),
        stages=("staked", "round:3", "round:5"),
    )
    labels = [dict(b.extra_axes)["stage"] for b in matrix.blocks]
    # "staked" resolves to height 3 but keeps its own label; round:3 is a
    # distinct arm at the same height
    assert labels == ["staked", "round:3", "round:5"]
    heights = [dict(b.extra_axes)["shock_height"] for b in matrix.blocks]
    assert heights == ["3", "3", "5"]


# ----------------------------------------------------------------------
# coalition pivots (acceptance criterion + satellite test)
# ----------------------------------------------------------------------
def test_coalition_pi_star_never_below_single_pivot():
    frontier = lattice_frontier(
        ("multi-party", "broker"), coalitions=True
    )
    assert len(frontier.coalition_rows) == 2  # both named coalitions priced
    names = {(r.family, r.coalition) for r in frontier.coalition_rows}
    assert names == {("multi-party", "P1+P2"), ("broker", "seller+buyer")}
    for row in frontier.coalition_rows:
        single = frontier.row(row.family, row.stage, row.shock)
        if row.pi_star is None:
            continue  # undeterred: collusive π* above the whole lattice
        assert single.pi_star is not None
        assert row.pi_star >= single.pi_star, (row, single)


def test_refined_coalition_rows_price_the_collusive_walk():
    refined = refine_frontier(
        lattice_frontier(("multi-party", "broker"), coalitions=True)
    )
    ring = refined.row("multi-party", "staked", SHOCK, coalition="P1+P2")
    single = refined.row("multi-party", "staked", SHOCK)
    assert ring.converged
    # the coalition's external stake is smaller, so its refined threshold
    # is at least the single pivot's
    assert ring.pi_star >= single.pi_star - DEFAULT_TOL
    broker = refined.row("broker", "staked", SHOCK, coalition="seller+buyer")
    # squeezing the broker out of its markup is not hedged by any swept
    # premium: the collusive row stays undeterred
    assert not broker.deterred


def test_refined_coalition_frontier_brackets_the_closed_forms():
    # satellite: the outsider-facing stake sums give closed-form collusive
    # thresholds the refined coalition rows must bracket
    from repro.campaign.ablation import (
        closed_form_coalition_pi_star,
        coalition_deterrence_stake,
    )

    refined = refine_frontier(
        lattice_frontier(("multi-party", "broker"), coalitions=True)
    )
    # ring P1+P2: external stake = 3p escrow toward P0 + p redemption = 4p,
    # coincidentally the single pivot's stake — collusion buys no discount
    assert coalition_deterrence_stake("multi-party", "P1+P2", 0.05) == 4 * 5
    closed = closed_form_coalition_pi_star("multi-party", "P1+P2", SHOCK)
    assert closed == closed_form_pi_star("multi-party", SHOCK)
    ring = refined.row("multi-party", "staked", SHOCK, coalition="P1+P2")
    quantum = 0.5 / premium_base("multi-party")
    assert ring.converged
    assert ring.pi_lo - quantum <= closed <= ring.pi_hi + quantum, (ring, closed)
    # broker seller+buyer: the markup is un-hedgeable rent — the closed
    # form is None, and the refined row stays undeterred even though the
    # upward expansion probed all the way to the ceiling
    assert closed_form_coalition_pi_star("broker", "seller+buyer", SHOCK) is None
    assert coalition_deterrence_stake("broker", "seller+buyer", 0.05) is None
    broker = refined.row("broker", "staked", SHOCK, coalition="seller+buyer")
    assert not broker.deterred and broker.probes
    assert all(probe.cell.walked for probe in broker.probes)
    with pytest.raises(ValueError, match="unknown coalition"):
        coalition_deterrence_stake("multi-party", "nope", 0.05)


def test_coalition_walks_are_jointly_rational():
    frontier = lattice_frontier(("multi-party",), coalitions=True)
    for cell in frontier.coalition_cells:
        assert cell.walked == cell.deviation_profitable, cell
        if cell.walked and cell.pi > 0:
            # the outsider (P0) is compensated by the members' external
            # premiums when the coalition walks from a stake
            assert cell.victim_net > 0, cell


def test_coalition_victims_exclude_every_member():
    # the rational arm's adversaries axis carries both members; neither
    # may be counted as a compensated victim
    matrix = ablation_matrix(
        families=("multi-party",),
        premium_fractions=(0.02,),
        shock_fractions=(0.105,),
        stages=("staked",),
        coalitions=True,
    )
    report = CampaignRunner(matrix).run()
    rational = next(
        r
        for r in report.results
        if "coalition" in dict(r.axes) and dict(r.axes)["strategy"] == "rational"
    )
    assert dict(r for r in rational.axes)["adversaries"] == "P1,P2"
    frontier = reduce_frontier(report)
    (cell,) = frontier.coalition_cells
    nets = dict(rational.premium_net)
    assert cell.victim_net == max(nets["P0"], 0)


# ----------------------------------------------------------------------
# digest discipline: serial vs pooled vs refined-from-merged
# ----------------------------------------------------------------------
def test_refined_digest_parity_across_backends_and_merged_lattice():
    kwargs = dict(
        families=("two-party", "auction"),
        premium_fractions=(0.0, 0.02, 0.05),
        shock_fractions=(SHOCK,),
        stages=("staked",),
    )
    serial_frontier = reduce_frontier(
        CampaignRunner(ablation_matrix(**kwargs)).run()
    )
    refined_serial = refine_frontier(serial_frontier)
    with WorkerPool(workers=2) as pool:
        pooled_frontier = reduce_frontier(
            CampaignRunner(
                ablation_matrix(**kwargs), backend="process", pool=pool
            ).run()
        )
        refined_pooled = refine_frontier(pooled_frontier, pool=pool)
    shards = [
        CampaignRunner(ablation_matrix(**kwargs), shard=(i, 2)).run()
        for i in (1, 2)
    ]
    refined_merged = refine_frontier(
        reduce_frontier(merge_reports(shards))
    )
    assert refined_serial.digest == refined_pooled.digest
    assert refined_serial.digest == refined_merged.digest
    assert refined_serial.probes > 0


def test_refined_json_roundtrip_and_tamper_detection():
    refined = refine_frontier(lattice_frontier(("auction",)))
    restored = RefinedFrontierReport.from_json(refined.to_json())
    assert restored == refined

    def tamper(mutate):
        data = json.loads(refined.to_json())
        mutate(data)
        with pytest.raises(ValueError, match="digest mismatch"):
            RefinedFrontierReport.from_json(json.dumps(data))

    tamper(lambda d: d["rows"][0].update(pi_star=0.0))
    tamper(lambda d: d.update(tol=0.5))
    tamper(lambda d: d.update(base_digest="0" * 64))

    def flip_probe(d):
        row = next(r for r in d["rows"] if r["probes"])
        row["probes"][0]["run_digest"] = "0" * 64

    tamper(flip_probe)


def test_ablation_cell_factory_is_registered_and_validates():
    from repro.campaign import MatrixSpec
    from repro.campaign.pool import registered_factories

    matrix = ablation_cell("two-party", 0.034999999999999996, SHOCK, "staked")
    assert len(matrix) == 2
    assert matrix.spec.factory == "ablation_cell"
    assert matrix.spec.build().digest() == matrix.digest()
    assert "ablation_cell" in registered_factories()
    with pytest.raises(ValueError, match="unknown ablation family"):
        ablation_cell("bootstrap", 0.02, SHOCK, "staked")
    with pytest.raises(ValueError, match="concrete stage"):
        ablation_cell("two-party", 0.02, SHOCK, "all")
    with pytest.raises(ValueError, match="unknown coalition"):
        ablation_cell("broker", 0.02, SHOCK, "staked", coalition="nope")
    coalition = ablation_cell(
        "broker", 0.02, SHOCK, "staked", coalition="seller+buyer"
    )
    assert len(coalition) == 2  # compliant + joint-rational


# ----------------------------------------------------------------------
# canonical float handling (satellite bugfix)
# ----------------------------------------------------------------------
def test_canon_float_and_fmt_fraction_normalize():
    assert canon_float(-0.0) == 0.0 and repr(canon_float(-0.0)) == "0.0"
    assert fmt_fraction(-0.0) == "0"
    assert fmt_fraction(0.025) == "0.025"
    assert fmt_fraction(2.0) == "2"
    # repr is exact where %g truncates: distinct bisected premiums keep
    # distinct labels
    a, b = 0.034999999999999996, 0.035
    assert format(a, "g") == format(b, "g")  # the old rendering collided
    assert fmt_fraction(a) != fmt_fraction(b)
    assert float(fmt_fraction(a)) == a


def test_bisected_premium_axes_are_exact_in_digests_and_json():
    pi = (0.02 + 0.05) / 2 / 2 + 0.02 / 2  # an arbitrary non-6-digit float
    matrix = ablation_cell("two-party", pi, SHOCK, "staked")
    report = CampaignRunner(matrix).run()
    frontier = reduce_frontier(report)
    (cell,) = frontier.cells
    assert cell.pi == canon_float(pi)
    from repro.campaign.ablation import FrontierReport

    restored = FrontierReport.from_json(frontier.to_json())
    assert restored.digest == frontier.digest
    assert restored.cells[0].pi == cell.pi


def test_negative_zero_shock_cannot_split_digests():
    a = ablation_cell("two-party", 0.05, 0.0, "staked")
    b = ablation_cell("two-party", 0.05, -0.0, "staked")
    assert a.digest() == b.digest()
