"""Unit tests for the premium-carrying escrow contract (§5.2)."""

import pytest

from repro.chain.block import Transaction
from repro.contracts.hedged_escrow import HedgedEscrow
from repro.crypto.hashing import Secret

SECRET = Secret.from_text("hedged-secret")


def _deploy(chain, redeem_to_owner=False):
    asset = chain.asset("banana")
    chain.ledger.mint(asset, "bob", 100)  # principal owner
    chain.ledger.mint(chain.native, "alice", 3)  # redeemer's premium
    address = chain.deploy(
        HedgedEscrow(
            principal_asset=asset,
            principal_amount=100,
            principal_owner="bob",
            redeemer="alice",
            hashlock=SECRET.hashlock,
            premium_amount=3,
            premium_deadline=1,
            principal_deadline=4,
            redemption_timelock=5,
            redeem_to_owner=redeem_to_owner,
        )
    )
    return chain, address, asset


def _call(chain, address, sender, method, **args):
    return chain.execute(
        Transaction(chain=chain.name, sender=sender, contract=address, method=method, args=args)
    )


def test_premium_deposit(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    tx = _call(chain, address, "alice", "deposit_premium")
    assert tx.receipt.ok
    assert chain.ledger.balance(chain.native, address) == 3
    assert chain.contract_at(address).premium_state == "held"


def test_premium_only_from_redeemer(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    assert _call(chain, address, "bob", "deposit_premium").receipt.status == "reverted"


def test_premium_deadline_enforced(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    chain.advance()  # height 2 > deadline 1
    assert _call(chain, address, "alice", "deposit_premium").receipt.status == "reverted"


def test_escrow_requires_premium(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    tx = _call(chain, address, "bob", "escrow_principal")
    assert tx.receipt.status == "reverted"
    assert "premium" in tx.receipt.error


def test_full_happy_path(chain):
    chain, address, asset = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    chain.advance()
    _call(chain, address, "bob", "escrow_principal")
    chain.advance()
    tx = _call(chain, address, "alice", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.ok
    # principal to the redeemer, premium back to the redeemer
    assert chain.ledger.balance(asset, "alice") == 100
    assert chain.ledger.balance(chain.native, "alice") == 3
    contract = chain.contract_at(address)
    assert contract.principal_state == "redeemed"
    assert contract.premium_state == "refunded"
    assert contract.settled


def test_premium_refund_when_principal_never_escrowed(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    for _ in range(4):  # heights 2..5 > principal_deadline 4
        chain.advance()
    contract = chain.contract_at(address)
    assert contract.premium_state == "refunded"
    assert chain.ledger.balance(chain.native, "alice") == 3


def test_premium_awarded_when_principal_unredeemed(chain):
    """§5.2: the escrower collects the premium when left locked up."""
    chain, address, asset = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    chain.advance()
    _call(chain, address, "bob", "escrow_principal")
    for _ in range(4):  # heights 3..6 > timelock 5
        chain.advance()
    contract = chain.contract_at(address)
    assert contract.principal_state == "refunded"
    assert contract.premium_state == "awarded"
    assert chain.ledger.balance(asset, "bob") == 100  # principal back
    assert chain.ledger.balance(chain.native, "bob") == 3  # compensation


def test_redeem_after_timelock_rejected(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    chain.advance()
    _call(chain, address, "bob", "escrow_principal")
    for _ in range(4):
        chain.advance()
    tx = _call(chain, address, "alice", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.status == "reverted"


def test_wrong_preimage_rejected(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    chain.advance()
    _call(chain, address, "bob", "escrow_principal")
    tx = _call(chain, address, "alice", "redeem", preimage=b"nope")
    assert tx.receipt.status == "reverted"


def test_escrow_deadline_enforced(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    for _ in range(4):  # height 5 > principal_deadline 4
        chain.advance()
    tx = _call(chain, address, "bob", "escrow_principal")
    assert tx.receipt.status == "reverted"


def test_lockup_measures(chain):
    chain, address, _ = _deploy(chain)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    chain.advance()
    _call(chain, address, "bob", "escrow_principal")
    for _ in range(4):
        chain.advance()
    contract = chain.contract_at(address)
    assert contract.principal_lockup == 4  # escrowed h2, refunded h6
    assert contract.premium_lockup == 5  # deposited h1, awarded h6


def test_redeem_to_owner_mode_releases_deposit(chain):
    """Bootstrap mode: redemption returns the principal to its owner."""
    chain, address, asset = _deploy(chain, redeem_to_owner=True)
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    chain.advance()
    _call(chain, address, "bob", "escrow_principal")
    chain.advance()
    tx = _call(chain, address, "alice", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.ok
    assert chain.ledger.balance(asset, "bob") == 100  # back to owner
    assert chain.ledger.balance(asset, "alice") == 0
    assert chain.ledger.balance(chain.native, "alice") == 3  # premium back


def test_settled_property_tracks_open_states(chain):
    chain, address, _ = _deploy(chain)
    contract = chain.contract_at(address)
    assert contract.settled  # nothing deposited yet
    chain.advance()
    _call(chain, address, "alice", "deposit_premium")
    assert not contract.settled
