"""Tests for the model-checking explorer (§10 analog)."""

import pytest

from repro.checker import (
    ModelChecker,
    Violation,
    full_strategy_space,
    halt_strategies,
    properties,
    skip_strategies,
)
from repro.checker.strategies import NamedStrategy
from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.graph.digraph import figure3_graph
from repro.core.hedged_multi_party import HedgedMultiPartySwap


def two_party_builder():
    return HedgedTwoPartySwap().build()


def fig3_builder():
    return HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()


# ----------------------------------------------------------------------
# strategy generators
# ----------------------------------------------------------------------
def test_halt_strategies_cover_rounds():
    space = halt_strategies(5)
    assert [s.label for s in space] == [f"halt@{r}" for r in range(5)]


def test_halt_strategies_step():
    assert len(halt_strategies(10, step=3)) == 4


def test_skip_strategies_enumerate_subsets():
    space = skip_strategies(("a", "b", "c"), max_subset=2)
    labels = {s.label for s in space}
    assert "skip:a" in labels and "skip:a+b" in labels
    assert len(space) == 3 + 3  # singletons + pairs


def test_full_space_is_union():
    space = full_strategy_space(4, ("a",), max_lag=2)
    assert len(space) == 4 + 1 + 2  # halts + skips + lags
    labels = {s.label for s in space}
    assert "lag+1" in labels and "lag+2" in labels


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
def test_profiles_enumeration_counts():
    space = halt_strategies(3)
    checker = ModelChecker(
        builder=two_party_builder,
        properties=[],
        strategies={"Alice": space, "Bob": space},
        max_adversaries=2,
    )
    profiles = list(checker.profiles())
    # 1 compliant + 2*3 singles + 3*3 pairs
    assert len(profiles) == 1 + 6 + 9


def test_two_party_check_is_clean():
    space = full_strategy_space(8, ("deposit_premium", "escrow_principal", "redeem"))
    checker = ModelChecker(
        builder=two_party_builder,
        properties=[
            properties.no_stuck_escrow,
            properties.two_party_hedged,
            properties.compliant_txs_never_revert,
        ],
        strategies={"Alice": space, "Bob": space},
        max_adversaries=1,
    )
    report = checker.run()
    assert report.ok, report.violations[:3]
    assert report.scenarios == 1 + 2 * len(space)
    assert "OK" in report.summary()


def test_two_party_joint_deviations_clean():
    space = halt_strategies(8, step=2)
    checker = ModelChecker(
        builder=two_party_builder,
        properties=[properties.no_stuck_escrow, properties.two_party_hedged],
        strategies={"Alice": space, "Bob": space},
        max_adversaries=2,
    )
    report = checker.run()
    assert report.ok


def test_fig3_check_is_clean():
    instance = fig3_builder()
    space = halt_strategies(instance.horizon, step=1)
    checker = ModelChecker(
        builder=fig3_builder,
        properties=[properties.no_stuck_escrow, properties.multi_party_lemmas],
        strategies={p: space for p in ("A", "B", "C")},
        max_adversaries=1,
    )
    report = checker.run()
    assert report.ok
    assert report.transactions > 0


def test_checker_detects_violations():
    """Meta-test: a false property must produce violations, proving the
    checker actually evaluates predicates against outcomes."""

    def impossible(instance, result, adversaries):
        return ["deliberately false"]

    checker = ModelChecker(
        builder=two_party_builder,
        properties=[impossible],
        strategies={"Alice": halt_strategies(2)},
        max_adversaries=1,
    )
    report = checker.run()
    assert not report.ok
    assert len(report.violations) == report.scenarios
    assert report.violations[0] == Violation("all-compliant", "deliberately false")
    assert "VIOLATIONS" in report.summary()


def test_checker_without_compliant_baseline():
    checker = ModelChecker(
        builder=two_party_builder,
        properties=[],
        strategies={"Alice": halt_strategies(2)},
        max_adversaries=1,
        include_compliant=False,
    )
    assert len(list(checker.profiles())) == 2
