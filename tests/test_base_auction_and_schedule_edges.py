"""Edge coverage: base auction configuration, base multi-party timing on
larger graphs, and schedule corner cases."""

import pytest

from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    HedgedAuction,
    extract_auction_outcome,
)
from repro.core.hedged_multi_party import extract_multi_party_outcome
from repro.graph.digraph import complete_graph, figure3_graph, ring_graph
from repro.graph.schedule import MultiPartySchedule
from repro.parties.strategies import halt_at
from repro.protocols.base_multi_party import BaseMultiPartySwap
from repro.protocols.instance import execute


# ----------------------------------------------------------------------
# the base (premium = 0) auction — §9.1 standalone
# ----------------------------------------------------------------------
def test_base_auction_completes():
    spec = AuctionSpec(premium=0)
    instance = HedgedAuction(spec=spec).build()
    result = execute(instance)
    out = extract_auction_outcome(instance, result)
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"
    assert all(net == 0 for net in out.premium_net.values())


def test_base_auction_cheat_refunds_without_compensation():
    """§9.1 alone keeps bids safe but pays no lockup compensation —
    exactly what §9.2's premiums add."""
    spec = AuctionSpec(premium=0)
    instance = HedgedAuction(spec=spec, strategy=AuctioneerStrategy.PUBLISH_LOSER).build()
    result = execute(instance)
    out = extract_auction_outcome(instance, result)
    assert out.coin_outcome == "refunded"
    assert not out.bid_stolen("Bob") and not out.bid_stolen("Carol")
    assert out.premium_net["Bob"] == 0  # no compensation in the base form


# ----------------------------------------------------------------------
# base multi-party on larger graphs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [3, 5, 7])
def test_base_ring_scales(n):
    instance = BaseMultiPartySwap(graph=ring_graph(n), leaders=("P0",)).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed
    assert not result.reverted()


def test_base_complete_graph_two_leaders():
    instance = BaseMultiPartySwap(graph=complete_graph(3)).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed


def test_base_late_halt_after_redemption_changes_nothing():
    instance = BaseMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    result = execute(instance, {"C": lambda a: halt_at(a, instance.horizon - 1)})
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed


# ----------------------------------------------------------------------
# schedule corners
# ----------------------------------------------------------------------
def test_schedule_depths_precomputed_override():
    graph = figure3_graph()
    depths = graph.follower_depths(("A",))
    schedule = MultiPartySchedule(graph, ("A",), depths=depths)
    assert schedule.max_depth == 2


def test_schedule_all_leaders_shortest_run():
    graph = figure3_graph()
    all_leaders = MultiPartySchedule(graph, ("A", "B", "C"))
    one_leader = MultiPartySchedule(graph, ("A",))
    assert all_leaders.forward_len == 1
    assert all_leaders.end < one_leader.end


def test_base_m_covers_escrow_phase():
    """The adjusted Herlihy timeout base never undercuts the escrow phase."""
    for graph, leaders in [
        (figure3_graph(), ("A",)),
        (ring_graph(5), ("P0",)),
        (complete_graph(4), ("P0", "P1", "P2")),
    ]:
        schedule = MultiPartySchedule(graph, leaders)
        assert schedule.base_m >= schedule.forward_len
        assert schedule.base_m >= graph.diameter
