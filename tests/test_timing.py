"""Timing adversaries: slow parties are treated exactly like sore losers.

§1: "If asset values are volatile, parties may even have an incentive to
run the protocol as slowly as possible to keep their options open for as
long as possible."  The paper's tight Δ-per-step timeouts close that door:
these tests verify that a laggard misses its deadlines, that the contracts
then route premiums exactly as for a walk-away, and that dawdling is never
profitable.
"""

import pytest

from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.graph.digraph import figure3_graph
from repro.parties.strategies import Laggard, lag_by
from repro.protocols.instance import execute

SPEC = HedgedTwoPartySpec(premium_a=2, premium_b=1)


def test_lag_zero_is_identity():
    instance = HedgedTwoPartySwap(SPEC).build()
    result = execute(instance, {"Bob": lambda a: lag_by(a, 0)})
    out = extract_two_party_outcome(instance, result)
    assert out.swapped
    assert out.alice_premium_net == 0 and out.bob_premium_net == 0


def test_slow_bob_pays_like_a_sore_loser():
    """Bob lagging one Δ misses every deadline; the victim is compensated."""
    instance = HedgedTwoPartySwap(SPEC).build()
    result = execute(instance, {"Bob": lambda a: lag_by(a, 1)})
    out = extract_two_party_outcome(instance, result)
    assert not out.swapped
    # Bob never even lands his premium (deadline 2 missed), so nothing of
    # Alice's gets locked beyond her own premium and nobody owes anything...
    assert out.alice_premium_net >= 0
    assert out.alice_kept_tokens


def test_slow_alice_after_engagement_compensates_bob():
    """Alice turns slow only after Bob escrows: the lag delays her secret
    past t_A, so her premium is awarded to Bob — exactly the §5.2 flow."""

    class SlowRedeemer(Laggard):
        def on_round(self, rnd, view):
            if rnd < 4:
                return self.inner.on_round(rnd, view)
            return super().on_round(rnd, view)

    instance = HedgedTwoPartySwap(SPEC).build()
    result = execute(instance, {"Alice": lambda a: SlowRedeemer(a, 2)})
    out = extract_two_party_outcome(instance, result)
    assert not out.swapped
    assert out.bob_premium_net == SPEC.premium_a
    assert out.alice_premium_net == -SPEC.premium_a


def test_slow_party_transactions_revert_not_crash():
    instance = HedgedTwoPartySwap(SPEC).build()
    result = execute(instance, {"Bob": lambda a: lag_by(a, 2)})
    late = [t for t in result.reverted() if t.sender == "Bob"]
    assert late, "the laggard's late transactions must be rejected"
    assert all("deadline" in t.receipt.error or "expired" in t.receipt.error
               or "timed out" in t.receipt.error or "premium" in t.receipt.error
               for t in late)


@pytest.mark.parametrize("lag", [1, 2, 3])
def test_multi_party_laggard_never_hurts_compliant(lag):
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    result = execute(instance, {"B": lambda a, l=lag: lag_by(a, l)})
    out = extract_multi_party_outcome(instance, result)
    for party in ("A", "C"):
        assert out.safety_holds(party)
        assert out.hedged_holds(party)


def test_dawdling_is_never_profitable():
    """Across all lags, the laggard's premium net is never positive while a
    compliant counterparty's is never negative."""
    for lag in (1, 2, 4):
        instance = HedgedTwoPartySwap(SPEC).build()
        result = execute(instance, {"Bob": lambda a, l=lag: lag_by(a, l)})
        out = extract_two_party_outcome(instance, result)
        assert out.bob_premium_net <= 0
        assert out.alice_premium_net >= 0
