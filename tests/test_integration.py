"""Cross-cutting integration tests: every protocol end-to-end, plus the
model checker over each protocol family with its lemma properties."""

import pytest

from repro.checker import ModelChecker, halt_strategies, properties as props
from repro.core.bootstrap import BootstrapSpec, BootstrappedSwap, extract_bootstrap_outcome
from repro.core.hedged_auction import (
    AuctioneerStrategy,
    HedgedAuction,
    extract_auction_outcome,
)
from repro.core.hedged_broker import HedgedBrokerDeal, extract_broker_outcome
from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.graph.digraph import complete_graph, figure3_graph, ring_graph
from repro.protocols.base_broker import BaseBrokerDeal
from repro.protocols.base_multi_party import BaseMultiPartySwap
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import execute


ALL_BUILDERS = [
    ("base-two-party", lambda: BaseTwoPartySwap().build()),
    ("hedged-two-party", lambda: HedgedTwoPartySwap().build()),
    ("base-multi-party", lambda: BaseMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()),
    ("hedged-multi-party", lambda: HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()),
    ("base-broker", lambda: BaseBrokerDeal().build()),
    ("hedged-broker", lambda: HedgedBrokerDeal(premium=1).build()),
    ("auction", lambda: HedgedAuction().build()),
    ("bootstrap", lambda: BootstrappedSwap(BootstrapSpec(amount_a=10_000, amount_b=10_000, rounds=2)).build()),
]


@pytest.mark.parametrize("name,builder", ALL_BUILDERS, ids=[n for n, _ in ALL_BUILDERS])
def test_every_protocol_completes_compliantly(name, builder):
    instance = builder()
    result = execute(instance)
    assert not result.reverted(), f"{name}: compliant txs reverted"
    # liveness: nothing left locked in any contract
    for chain in instance.world.chains.values():
        for (asset, account), balance in chain.ledger.snapshot().items():
            assert not (
                account in chain.contracts and balance != 0
            ), f"{name}: {account} still holds {balance} {asset}"


@pytest.mark.parametrize("n", [3, 4, 5])
def test_hedged_rings_scale(n):
    instance = HedgedMultiPartySwap(graph=ring_graph(n)).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed
    assert all(net == 0 for net in out.premium_net.values())


def test_hedged_complete_graph_k4():
    instance = HedgedMultiPartySwap(graph=complete_graph(4)).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed


def test_checker_all_protocol_families_clean():
    """One consolidated model-check across the protocol families (EXP-M1
    runs the full version; this is the fast regression guard)."""
    reports = {}

    two_party = ModelChecker(
        builder=lambda: HedgedTwoPartySwap().build(),
        properties=[props.no_stuck_escrow, props.two_party_hedged],
        strategies={
            p: halt_strategies(8, step=2) for p in ("Alice", "Bob")
        },
        max_adversaries=2,
    )
    reports["two-party"] = two_party.run()

    fig3 = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    multi = ModelChecker(
        builder=lambda: HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build(),
        properties=[props.no_stuck_escrow, props.multi_party_lemmas],
        strategies={p: halt_strategies(fig3.horizon, step=3) for p in ("A", "B", "C")},
        max_adversaries=1,
    )
    reports["multi-party"] = multi.run()

    broker_inst = HedgedBrokerDeal(premium=1).build()
    broker = ModelChecker(
        builder=lambda: HedgedBrokerDeal(premium=1).build(),
        properties=[props.no_stuck_escrow, props.broker_bounds],
        strategies={
            p: halt_strategies(broker_inst.horizon, step=2)
            for p in ("Alice", "Bob", "Carol")
        },
        max_adversaries=1,
    )
    reports["broker"] = broker.run()

    auction_inst = HedgedAuction().build()
    auction = ModelChecker(
        builder=lambda: HedgedAuction().build(),
        properties=[props.no_stuck_escrow, props.auction_lemmas],
        strategies={
            p: halt_strategies(auction_inst.horizon)
            for p in ("Alice", "Bob", "Carol")
        },
        max_adversaries=1,
    )
    reports["auction"] = auction.run()

    for name, report in reports.items():
        assert report.ok, f"{name}: {report.violations[:3]}"


def test_deviant_auctioneer_strategies_all_safe():
    for strategy in AuctioneerStrategy:
        instance = HedgedAuction(strategy=strategy).build()
        result = execute(instance)
        out = extract_auction_outcome(instance, result)
        for bidder in ("Bob", "Carol"):
            assert not out.bid_stolen(bidder), strategy


def test_trace_formatting_is_printable():
    instance = HedgedTwoPartySwap().build()
    result = execute(instance)
    trace = result.format_trace()
    assert "premium_deposited" in trace
    assert "redeemed" in trace
    assert str(result.transactions[0])  # __str__ smoke check
