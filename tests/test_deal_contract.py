"""Unit tests for the pipeline deal contract (contracts/deal.py)."""

import pytest

from repro.chain.block import Transaction
from repro.contracts.deal import DealDeadlines, PipelineDealContract, TradeStep
from repro.core.multi_round_deal import DealSpec, MultiRoundDeal, deal_premium_tables
from repro.crypto.hashkeys import HashKey
from repro.protocols.instance import execute
from repro.sim.runner import SyncRunner

SPEC = DealSpec()  # two brokers


def _fresh(run_rounds=0):
    instance = MultiRoundDeal(SPEC, premium=1).build()
    if run_rounds:
        runner = SyncRunner(instance.world, list(instance.actors.values()))
        runner.run(run_rounds, parties=list(instance.actors))
    return instance


def _call(instance, chain_name, address, sender, method, **args):
    chain = instance.world.chain(chain_name)
    return chain.execute(
        Transaction(chain=chain_name, sender=sender, contract=address, method=method, args=args)
    )


def _ticket(instance):
    return instance.contracts["ticket"]


# ----------------------------------------------------------------------
# deadlines schedule
# ----------------------------------------------------------------------
def test_deadlines_layout_for_two_rounds():
    d = DealDeadlines.for_rounds(2, 4)
    assert d.escrow_premium == 1
    assert d.trading_premium_base == 1  # T_k by 1 + k
    assert d.redemption_premium_base == 3
    assert d.activation == 7
    assert d.escrow == 8
    assert d.trade_base == 8
    assert d.hashkey_base == 10
    assert d.end == 14
    assert d.horizon == 16


def test_deadlines_scale_with_rounds():
    d1 = DealDeadlines.for_rounds(1, 3)
    d3 = DealDeadlines.for_rounds(3, 5)
    assert d3.end > d1.end
    assert d3.hashkey_base - d3.trade_base == 3


# ----------------------------------------------------------------------
# pipeline mechanics
# ----------------------------------------------------------------------
def test_trade_requires_prior_rounds():
    instance = _fresh(run_rounds=8)  # escrows have just landed
    chain_name, address = _ticket(instance)
    # Mike tries round 2 before Ann's round 1
    tx = _call(instance, chain_name, address, "Mike", "trade", round=2)
    assert tx.receipt.status == "reverted"
    assert "earlier rounds" in tx.receipt.error


def test_trade_round_only_by_its_trader():
    instance = _fresh(run_rounds=8)
    chain_name, address = _ticket(instance)
    tx = _call(instance, chain_name, address, "Mike", "trade", round=1)
    assert tx.receipt.status == "reverted"
    assert "only Ann" in tx.receipt.error


def test_trade_before_escrow_rejected():
    instance = _fresh(run_rounds=4)
    chain_name, address = _ticket(instance)
    tx = _call(instance, chain_name, address, "Ann", "trade", round=1)
    assert tx.receipt.status == "reverted"


def test_unknown_round_rejected():
    instance = _fresh(run_rounds=8)
    chain_name, address = _ticket(instance)
    tx = _call(instance, chain_name, address, "Ann", "trade", round=9)
    assert tx.receipt.status == "reverted"


def test_direct_own_key_accepted_anywhere():
    """Any leader may present its own key directly on either contract."""
    instance = _fresh(run_rounds=10)
    seller = instance.actors["Seller"]
    own = HashKey.originate(seller.secret, seller.keypair, "Seller")
    chain_name, address = _ticket(instance)
    # Seller is NOT a redeemer on the ticket contract, but |q| = 1 is fine.
    tx = _call(instance, chain_name, address, "Seller", "present_hashkey", hashkey=own)
    assert tx.receipt.ok


def test_forwarded_key_needs_redeemer_path():
    """A forwarded (|q| > 1) key must start at one of the contract's
    redeemers."""
    instance = _fresh(run_rounds=10)
    seller = instance.actors["Seller"]
    buyer = instance.actors["Buyer"]
    # path (Buyer, Seller): not a graph path (no arc Buyer->Seller)
    forged = HashKey.originate(seller.secret, seller.keypair, "Seller").extend(
        buyer.keypair, "Buyer"
    )
    chain_name, address = _ticket(instance)
    tx = _call(instance, chain_name, address, "Buyer", "present_hashkey", hashkey=forged)
    assert tx.receipt.status == "reverted"


def test_escrow_premium_shares_sum():
    instance = _fresh()
    contract = instance.world.chain(SPEC.ticket_chain).contract_at(
        instance.contracts["ticket"][1]
    )
    assert contract.escrow_premium_amount == sum(
        amount for _, amount in contract.escrow_premium_shares
    )


def test_contract_activation_requires_full_structure():
    instance = _fresh(run_rounds=4)  # E, T posted; R originations landing
    contract = instance.world.chain(SPEC.ticket_chain).contract_at(
        instance.contracts["ticket"][1]
    )
    assert not contract.contract_activated  # extensions still propagating
    instance2 = _fresh(run_rounds=8)
    contract2 = instance2.world.chain(SPEC.ticket_chain).contract_at(
        instance2.contracts["ticket"][1]
    )
    assert contract2.contract_activated


def test_trading_premium_refunds_on_trade():
    instance = _fresh()
    result = execute(instance)
    ticket = instance.contract("ticket")
    assert all(state == "refunded" for state in ticket.trading_premium_state.values())
    assert ticket.escrow_premium_state == "refunded"


def test_premium_tables_scale_with_p():
    t1 = deal_premium_tables(SPEC, 1)
    t3 = deal_premium_tables(SPEC, 3)
    for arc, amount in t1["trading"].items():
        assert t3["trading"][arc] == 3 * amount
