"""Integration tests: the §9 auction, Lemmas 7–8, and the §9.2 premiums."""

import pytest

from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    CommitRevealCoinContract,
    HedgedAuction,
    commitment_for,
    extract_auction_outcome,
)
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


def run(strategy=AuctioneerStrategy.HONEST, spec=None, deviations=None):
    instance = HedgedAuction(spec=spec, strategy=strategy).build()
    result = execute(instance, deviations or {})
    return instance, result, extract_auction_outcome(instance, result)


# ----------------------------------------------------------------------
# happy path
# ----------------------------------------------------------------------
def test_honest_auction_completes():
    _, result, out = run()
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"  # 120 beats 90
    assert out.coins_delta["Alice"] == 120
    assert out.coins_delta["Bob"] == -120
    assert out.coins_delta["Carol"] == 0  # refunded
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()


def test_tie_breaks_deterministically():
    spec = AuctionSpec(bids={"Bob": 100, "Carol": 100})
    _, _, out = run(spec=spec)
    assert out.winner_expected == "Carol"  # lexicographic tie-break on equal bids
    assert out.tickets_to == "Carol"


# ----------------------------------------------------------------------
# deviant auctioneer (Lemma 8: no compliant bidder's bid can be stolen)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "strategy",
    [
        AuctioneerStrategy.PUBLISH_LOSER,
        AuctioneerStrategy.PUBLISH_BOTH_KEYS,
        AuctioneerStrategy.ABANDON,
    ],
)
def test_cheating_refunds_all_bids_and_pays_premiums(strategy):
    _, _, out = run(strategy)
    assert out.coin_outcome == "refunded"
    assert out.coins_delta["Bob"] == 0 and out.coins_delta["Carol"] == 0
    assert out.premium_net["Bob"] == 1 and out.premium_net["Carol"] == 1
    assert out.premium_net["Alice"] == -2
    assert not out.bid_stolen("Bob") and not out.bid_stolen("Carol")


def test_publish_loser_gives_tickets_away():
    """Alice may award tickets to anyone — only her own loss (§9.1)."""
    _, _, out = run(AuctioneerStrategy.PUBLISH_LOSER)
    assert out.tickets_to == "Carol"
    assert out.coins_delta["Carol"] == 0  # but no coins move


@pytest.mark.parametrize(
    "strategy",
    [AuctioneerStrategy.PUBLISH_TICKET_ONLY, AuctioneerStrategy.PUBLISH_COIN_ONLY],
)
def test_lemma7_forwarding_heals_single_chain_publication(strategy):
    instance, _, out = run(strategy)
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"
    ticket = instance.contract("ticket")
    coin = instance.contract("coin")
    assert set(ticket.accepted) == set(coin.accepted) == {"Bob"}


def test_lemma7_survives_a_sulking_loser():
    """Only ONE compliant bidder is needed to forward (Carol sulks)."""
    instance, _, out = run(
        AuctioneerStrategy.PUBLISH_TICKET_ONLY,
        deviations={"Carol": lambda a: halt_at(a, 2)},
    )
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"


def test_low_bidder_cannot_wreck():
    """§9: the losing bidder has no vote — halting changes nothing."""
    _, _, out = run(deviations={"Carol": lambda a: halt_at(a, 2)})
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"


def test_withheld_bid_is_no_attack():
    """A bidder who never bids just loses the auction for itself."""
    spec = AuctionSpec(bids={"Bob": 120, "Carol": 0})
    _, _, out = run(spec=spec)
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"
    assert out.bids == {"Bob": 120}


def test_no_bids_at_all_refunds_everything():
    spec = AuctionSpec(bids={"Bob": 0, "Carol": 0})
    _, _, out = run(spec=spec)
    assert out.coin_outcome == "refunded"
    # nobody bid, so nobody locked anything: the whole endowment refunds
    assert out.premium_net["Alice"] == 0
    assert out.premium_net["Bob"] == 0 and out.premium_net["Carol"] == 0
    assert out.ticket_outcome == "refunded"


def test_three_bidders_generalization():
    spec = AuctionSpec(
        bidders=("Bob", "Carol", "Dave"),
        bids={"Bob": 100, "Carol": 150, "Dave": 50},
    )
    _, _, out = run(spec=spec)
    assert out.tickets_to == "Carol"
    assert out.coins_delta["Carol"] == -150
    assert out.coins_delta["Bob"] == 0 and out.coins_delta["Dave"] == 0


def test_three_bidders_wreck_pays_each():
    spec = AuctionSpec(
        bidders=("Bob", "Carol", "Dave"),
        bids={"Bob": 100, "Carol": 150, "Dave": 50},
        premium=2,
    )
    _, _, out = run(strategy=AuctioneerStrategy.ABANDON, spec=spec)
    assert out.premium_net["Alice"] == -6
    for bidder in ("Bob", "Carol", "Dave"):
        assert out.premium_net[bidder] == 2


def test_base_auction_premium_zero_no_compensation():
    spec = AuctionSpec(premium=0)
    _, _, out = run(strategy=AuctioneerStrategy.ABANDON, spec=spec)
    assert out.coin_outcome == "refunded"
    assert all(net == 0 for net in out.premium_net.values())


def test_late_hashkey_rejected():
    """A declaration after its |q|-based deadline reverts (§9 timeouts)."""
    from repro.chain.block import Transaction
    from repro.crypto.hashkeys import HashKey

    instance = HedgedAuction(strategy=AuctioneerStrategy.ABANDON).build()
    result = execute(instance)  # runs to completion; heights now past 6
    spec = instance.meta["spec"]
    alice = instance.actors["Alice"]
    hashkey = HashKey.originate(alice.secrets["Bob"], alice.keypair, "Alice")
    chain = instance.world.chain(spec.coin_chain)
    _, coin_addr = instance.contracts["coin"]
    tx = chain.execute(
        Transaction(
            chain=spec.coin_chain,
            sender="Alice",
            contract=coin_addr,
            method="present_hashkey",
            args={"hashkey": hashkey},
        )
    )
    assert tx.receipt.status == "reverted"
    assert "timed out" in tx.receipt.error
    out = extract_auction_outcome(instance, result)
    assert out.coin_outcome == "refunded"


# ----------------------------------------------------------------------
# commit-reveal extension (footnote 8)
# ----------------------------------------------------------------------
def test_commit_reveal_contract_flow(chain):
    from repro.chain.block import Transaction
    from repro.contracts.auction import AuctionDeadlines
    from repro.crypto.hashing import Secret

    coin_asset = chain.asset("coin")
    chain.ledger.mint(coin_asset, "bob", 100)
    secrets = {"bob": Secret.from_text("designate-bob")}
    contract = CommitRevealCoinContract(
        auctioneer="alice",
        bidders=("bob",),
        hashlocks={"bob": secrets["bob"].hashlock},
        public_of={},
        deadlines=AuctionDeadlines(bidding=2, hashkey_base=3, commit=7),
        coin_asset=coin_asset,
        premium=0,
        reveal_deadline=3,
    )
    address = chain.deploy(contract)

    def call(sender, method, **args):
        return chain.execute(
            Transaction(chain=chain.name, sender=sender, contract=address, method=method, args=args)
        )

    chain.advance()
    salt = b"salty"
    assert call("bob", "commit_bid", commitment=commitment_for(77, salt)).receipt.ok
    chain.advance()
    # wrong opening rejected
    assert call("bob", "reveal_bid", amount=78, salt=salt).receipt.status == "reverted"
    assert call("bob", "reveal_bid", amount=77, salt=salt).receipt.ok
    assert contract.bids == {"bob": 77}
    # plain bid() is disabled in sealed mode
    assert call("bob", "bid", amount=5).receipt.status == "reverted"
