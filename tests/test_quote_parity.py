"""Tier parity: every rung of the quote ladder agrees on the answer.

The §5.2 closed forms (tier 1), the cached refined rows (tier 2), and
the narrow measurement fallback (tier 3) are three routes to one number;
these tests pin that they agree within the request tolerance for every
named family and both named coalitions — and that the broker's
seller+buyer pair reads un-hedgeable on every route.  Graph-shaped deals
have no closed form, so tier 3 is checked against the analytic
stake-slope hint instead.
"""

import pytest

from repro.campaign.ablation.grid import ABLATION_COALITIONS, ABLATION_FAMILIES
from repro.campaign.cache import ResultCache
from repro.quote import QuoteEngine, QuoteRequest, analytic_pi_star_hint

PARITY_CELLS = [(family, "") for family in ABLATION_FAMILIES] + [
    (family, coalition)
    for family, coalitions in sorted(ABLATION_COALITIONS.items())
    for coalition in coalitions
]


@pytest.fixture(scope="module")
def warm_engine(tmp_path_factory):
    """One engine + cache shared by the whole module: tier-3 runs warm
    tier 2, exactly the service's production shape."""
    root = tmp_path_factory.mktemp("quote-cache")
    return QuoteEngine(cache=ResultCache(root))


@pytest.mark.parametrize("family,coalition", PARITY_CELLS)
def test_tiers_agree_within_tolerance(warm_engine, family, coalition):
    request = QuoteRequest(family=family, coalition=coalition)
    tier1 = warm_engine.quote(request, tiers=(1,))
    tier3 = warm_engine.quote(request, tiers=(3,))
    tier2 = warm_engine.quote(request, tiers=(2,))
    assert (tier1.tier, tier2.tier, tier3.tier) == (1, 2, 3)
    if tier1.pi_star is None:
        assert tier2.pi_star is None and tier3.pi_star is None
    else:
        assert tier3.pi_star is not None
        assert abs(tier1.pi_star - tier3.pi_star) <= request.tol
        # tiers 2 and 3 read the same stored row: byte-identical quotes
        assert tier2.digest() == tier3.digest()
        assert tier2.provenance == tier3.provenance


def test_broker_seller_buyer_unhedgeable_on_every_tier(warm_engine):
    """The paper's sore spot: the seller+buyer pair always finds a
    stake-free round, so no premium deters the joint walk — and all
    three tiers must say so."""
    request = QuoteRequest(family="broker", coalition="seller+buyer")
    for tiers in ((1,), (3,), (2,)):
        quote = warm_engine.quote(request, tiers=tiers)
        assert not quote.hedgeable
        assert quote.premium is None
        assert quote.schedule == ()


def test_graph_measurement_tracks_analytic_hint(warm_engine):
    """ring:4 has no closed form; the measured tier-3 answer must sit
    within tolerance of the stake-slope estimate."""
    request = QuoteRequest(graph="ring:4")
    hint = analytic_pi_star_hint("ring:4", request.shock)
    measured = warm_engine.quote(request, tiers=(3,))
    assert measured.pi_star is not None
    assert abs(measured.pi_star - hint) <= request.tol
    warm = warm_engine.quote(request, tiers=(2,))
    assert warm.digest() == measured.digest()


def test_figure3_is_structurally_unhedgeable(warm_engine):
    """figure3's pivot B pays on two arcs and receives on one: under
    uniform notionals completing costs B more than any stake it could
    forfeit, so the measured verdict is un-hedgeable at every premium —
    the service surfaces a structurally losing deal rather than pricing
    it."""
    quote = warm_engine.quote(QuoteRequest(graph="figure3"), tiers=(3,))
    assert not quote.hedgeable
    assert quote.premium is None


def test_ring3_graph_rides_the_closed_form(warm_engine):
    """graph=ring:3 *is* the multi-party cell, so it answers at tier 1
    with the named family's closed form."""
    as_graph = warm_engine.quote(QuoteRequest(graph="ring:3"), tiers=(1,))
    as_family = warm_engine.quote(QuoteRequest(family="multi-party"), tiers=(1,))
    assert as_graph.tier == 1
    assert as_graph.family == "multi-party"
    # identical answers (the request digests differ — two spellings of
    # one question — but everything priced is the same)
    assert as_graph.pi_star == as_family.pi_star
    assert as_graph.premium == as_family.premium
    assert as_graph.schedule == as_family.schedule
    assert as_graph.provenance == as_family.provenance


def test_coalition_quote_prices_the_joint_walk(warm_engine):
    """ring-adjacent P1+P2: the external stake equals the single pivot's
    4p, so the coalition quote coincides with the pivot quote (collusion
    buys no discount) — on the closed-form and measured routes alike."""
    pivot = QuoteRequest(family="multi-party")
    pair = QuoteRequest(family="multi-party", coalition="P1+P2")
    assert (
        warm_engine.quote(pair, tiers=(1,)).pi_star
        == warm_engine.quote(pivot, tiers=(1,)).pi_star
    )
    assert (
        warm_engine.quote(pair, tiers=(3,)).pi_star
        == warm_engine.quote(pivot, tiers=(3,)).pi_star
    )
