"""Equations 1–2 edge cases: multi-leader graphs, base cases, scale.

The quote engine leans on the premium recurrences in corners the
original §7.1 walkthrough never exercises: graphs whose minimum feedback
vertex set has several leaders, beneficiaries already on the premium
path, and dense graphs where only the member-subset memo keeps Equation
1 tractable.  These tests pin that territory.
"""

import pytest

from repro.core.premiums import (
    escrow_premium_amounts,
    leader_redemption_total,
    redemption_premium_amount,
    redemption_premium_flow,
)
from repro.errors import GraphError
from repro.graph.digraph import complete_graph, ring_graph
from repro.graph.feedback import (
    is_feedback_vertex_set,
    minimum_feedback_vertex_set,
)


# ----------------------------------------------------------------------
# multi-leader graphs
# ----------------------------------------------------------------------
class TestMultiLeader:
    def test_ring4_with_two_leaders(self):
        """{P0, P2} is a (non-minimum) feedback vertex set of the 4-ring:
        both equations stay well-defined with the extra leader."""
        graph = ring_graph(4)
        leaders = ("P0", "P2")
        assert is_feedback_vertex_set(graph, frozenset(leaders))
        escrow = escrow_premium_amounts(graph, leaders, 1)
        # each arc into a leader carries that leader's redemption total;
        # each arc into a follower covers the follower's outgoing escrows
        for (u, v), amount in escrow.items():
            if v in leaders:
                assert amount == leader_redemption_total(graph, v, 1)
            else:
                assert amount == sum(
                    escrow[arc] for arc in graph.out_arcs(v)
                )

    def test_ring4_two_leader_flow_covers_both_origins(self):
        graph = ring_graph(4)
        deposits = redemption_premium_flow(graph, ("P0", "P2"), 3)
        by_leader = {}
        for deposit in deposits:
            by_leader.setdefault(deposit.leader, []).append(deposit)
        assert set(by_leader) == {"P0", "P2"}
        for leader, flow in by_leader.items():
            # round 0 is the leader's own origination on its in-arcs
            origin = [d for d in flow if d.round == 0]
            assert all(d.depositor == leader for d in origin)
            assert all(d.path == (leader,) for d in origin)
            # each leader's premium propagates independently around the
            # whole ring: one deposit per arc, paths ending at the leader
            assert {d.arc for d in flow} == set(graph.arcs)
            assert all(d.path[-1] == leader for d in flow)

    def test_complete4_minimum_fvs_is_multi_leader(self):
        """A complete digraph needs n-1 leaders (any two survivors form
        a 2-cycle) — the densest multi-leader configuration we quote."""
        graph = complete_graph(4)
        leaders = minimum_feedback_vertex_set(graph)
        assert len(leaders) == 3
        escrow = escrow_premium_amounts(graph, leaders, 1)
        assert set(escrow) == set(graph.arcs)
        assert all(amount >= 1 for amount in escrow.values())

    def test_non_fvs_leader_set_rejected(self):
        with pytest.raises(GraphError):
            escrow_premium_amounts(complete_graph(4), ("P0",), 1)


# ----------------------------------------------------------------------
# Equation 1 base cases
# ----------------------------------------------------------------------
class TestBeneficiaryOnPath:
    def test_beneficiary_on_path_pays_exactly_p(self):
        """The paper's cycle clause: a beneficiary already on the path
        passes nothing through, for leaders and followers alike."""
        graph = ring_graph(3)
        # leader case: path ends at the leader
        assert redemption_premium_amount(graph, ("P1", "P2", "P0"), "P0", 7) == 7
        # follower case on a dense graph: P1 is mid-path, still just p
        dense = complete_graph(4)
        assert redemption_premium_amount(dense, ("P1", "P2", "P3"), "P3", 7) == 7
        assert redemption_premium_amount(dense, ("P1", "P2", "P3"), "P2", 7) == 7

    def test_amount_depends_only_on_path_members(self):
        """Equation 1's recursion tests path membership, never order —
        the member-subset memo's correctness condition."""
        dense = complete_graph(4)
        via_one = redemption_premium_amount(dense, ("P1", "P2", "P0"), "P3", 5)
        via_other = redemption_premium_amount(dense, ("P2", "P1", "P0"), "P3", 5)
        assert via_one == via_other

    def test_empty_and_broken_paths_rejected(self):
        graph = ring_graph(3)
        with pytest.raises(GraphError):
            redemption_premium_amount(graph, (), "P0", 1)
        with pytest.raises(GraphError):
            redemption_premium_amount(graph, ("P0", "P2"), "P1", 1)


# ----------------------------------------------------------------------
# complete:6 — exactness at memo-required scale
# ----------------------------------------------------------------------
class TestCompleteSixExactness:
    def test_integer_exactness_and_linearity(self):
        """complete:6 is intractable without the member-subset memo; with
        it, amounts stay exact integers and perfectly linear in p."""
        graph = complete_graph(6)
        leaders = minimum_feedback_vertex_set(graph)
        assert len(leaders) == 5
        unit = escrow_premium_amounts(graph, leaders, 1)
        scaled = escrow_premium_amounts(graph, leaders, 13)
        for arc, amount in unit.items():
            assert isinstance(amount, int)
            assert scaled[arc] == 13 * amount  # no float drift anywhere

    def test_memo_is_shared_across_calls(self):
        graph = complete_graph(6)
        redemption_premium_amount(graph, ("P5",), "P0", 2)
        memo = graph.__dict__["_equation1_memo"]
        filled = len(memo)
        assert filled > 0
        # a second query over the same territory adds no new states
        redemption_premium_amount(graph, ("P5",), "P0", 2)
        assert len(memo) == filled
        # distinct graph instances never share entries
        other = complete_graph(6)
        assert "_equation1_memo" not in other.__dict__

    def test_flow_is_deterministic_and_integral(self):
        graph = complete_graph(6)
        leaders = minimum_feedback_vertex_set(graph)
        first = redemption_premium_flow(graph, leaders, 3)
        second = redemption_premium_flow(graph, leaders, 3)
        assert first == second
        assert all(isinstance(d.amount, int) for d in first)
        assert all(d.depositor == d.path[0] for d in first)
