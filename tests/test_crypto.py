"""Unit tests for hashing, keys, and signatures."""

import pytest

from repro.crypto.hashing import Hashlock, Secret, sha256_hex
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, require_valid, sign, verify
from repro.errors import CryptoError


# ----------------------------------------------------------------------
# hashing
# ----------------------------------------------------------------------
def test_sha256_hex_known_vector():
    assert sha256_hex(b"abc") == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_secret_hashlock_roundtrip():
    secret = Secret.from_text("hello")
    assert secret.hashlock.matches(secret.preimage)


def test_hashlock_rejects_wrong_preimage():
    assert not Secret.from_text("a").hashlock.matches(b"b")


def test_generated_secrets_are_distinct():
    assert Secret.generate().preimage != Secret.generate().preimage


def test_hashlock_equality_by_digest():
    s = Secret.from_text("x")
    assert Hashlock(s.hashlock.digest) == s.hashlock
    assert hash(Hashlock(s.hashlock.digest)) == hash(s.hashlock)


def test_secret_label_does_not_affect_equality():
    a = Secret.from_text("x", label="one")
    b = Secret.from_text("x", label="two")
    assert a == b


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def test_keypair_public_is_derived():
    kp = KeyPair.from_seed("seed")
    assert kp.public == sha256_hex(b"seed")


def test_registry_register_and_lookup():
    reg = KeyRegistry()
    kp = KeyPair.generate(owner="Alice")
    reg.register(kp)
    assert reg.knows(kp.public)
    assert reg.private_for(kp.public) == kp.private
    assert reg.owner_of(kp.public) == "Alice"
    assert len(reg) == 1


def test_registry_unknown_key_raises():
    reg = KeyRegistry()
    with pytest.raises(CryptoError):
        reg.private_for("deadbeef")


# ----------------------------------------------------------------------
# signatures
# ----------------------------------------------------------------------
@pytest.fixture
def signing_setup():
    reg = KeyRegistry()
    kp = KeyPair.generate(owner="Alice")
    reg.register(kp)
    return reg, kp


def test_sign_verify_roundtrip(signing_setup):
    reg, kp = signing_setup
    sig = sign(kp, b"message")
    assert verify(reg, sig, b"message")


def test_verify_rejects_tampered_message(signing_setup):
    reg, kp = signing_setup
    sig = sign(kp, b"message")
    assert not verify(reg, sig, b"messagE")


def test_verify_rejects_tampered_tag(signing_setup):
    reg, kp = signing_setup
    sig = sign(kp, b"message")
    forged = Signature(signer=sig.signer, tag="00" * 32)
    assert not verify(reg, forged, b"message")


def test_verify_rejects_unknown_signer(signing_setup):
    reg, _ = signing_setup
    stranger = KeyPair.generate()
    sig = sign(stranger, b"message")
    assert not verify(reg, sig, b"message")


def test_signature_not_transferable_between_keys(signing_setup):
    reg, kp = signing_setup
    other = KeyPair.generate(owner="Bob")
    reg.register(other)
    sig = sign(kp, b"message")
    forged = Signature(signer=other.public, tag=sig.tag)
    assert not verify(reg, forged, b"message")


def test_require_valid_raises(signing_setup):
    reg, kp = signing_setup
    sig = sign(kp, b"m")
    require_valid(reg, sig, b"m")  # ok
    with pytest.raises(CryptoError):
        require_valid(reg, sig, b"other")
