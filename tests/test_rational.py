"""Tests for rational (opportunistic) actors and the utility-model framework."""

import pytest

from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.base import Actor
from repro.parties.rational import (
    Opportunist,
    TokenPrices,
    held_premium_stake,
    pending_completion_gain,
    price_shock,
    rational_bob,
    rational_party,
    swap_party_model,
    two_party_model,
)
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import execute


def test_price_shock_path():
    price = price_shock(1.0, 0.10, at_height=5)
    assert price(4) == 1.0
    assert price(5) == 0.9
    assert price(9) == 0.9


def test_opportunist_halts_permanently(world):
    keys = world.register_party("X")

    class Chatty(Actor):
        def on_round(self, rnd, view):
            return [self.tx("apricot", "c-1", "ping")]

    flips = iter([True, True, False, True])  # True again after the walk
    actor = Opportunist(Chatty("X", keys), lambda rnd, view: next(flips))
    view = world.view()
    assert actor.on_round(0, view)
    assert actor.on_round(1, view)
    assert actor.on_round(2, view) == []
    assert actor.walked_at == 2
    assert actor.on_round(3, view) == []  # no coming back


def test_base_rational_bob_completes_without_shock():
    instance = BaseTwoPartySwap().build()
    spec = instance.meta["spec"]
    transform = lambda a: rational_bob(a, spec, price_shock(1.0, 0.0, 99))
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert out.swapped


def test_base_rational_bob_walks_on_tiny_drop():
    instance = BaseTwoPartySwap().build()
    spec = instance.meta["spec"]
    transform = lambda a: rational_bob(a, spec, price_shock(1.0, 0.001, at_height=2))
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert not out.swapped
    assert out.alice_premium_net == 0  # and Alice gets nothing for it


def test_hedged_rational_bob_shrugs_off_small_drop():
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)
    instance = HedgedTwoPartySwap(spec).build()
    transform = lambda a: rational_bob(
        a, spec, price_shock(1.0, 0.01, at_height=3),
        premium_contract=instance.contracts["apricot_escrow"],
    )
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert out.swapped  # 1% < the 2% premium: walking is irrational


def test_hedged_rational_bob_pays_when_walking():
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)
    instance = HedgedTwoPartySwap(spec).build()
    transform = lambda a: rational_bob(
        a, spec, price_shock(1.0, 0.25, at_height=3),
        premium_contract=instance.contracts["apricot_escrow"],
    )
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert not out.swapped
    assert out.bob_premium_net < 0  # exercising the option costs p_b
    assert out.alice_premium_net > 0  # the victim is compensated


# ----------------------------------------------------------------------
# the generalized utility-model framework
# ----------------------------------------------------------------------
def test_token_prices_shock_applies_from_height_and_spares_native():
    from repro.chain.assets import Asset, native_asset

    prices = TokenPrices(
        base=(("apricot-token", 2.0),),
        shocked="apricot-token",
        fraction=0.25,
        at_height=4,
    )
    token = Asset("apricot", "apricot-token")
    assert prices(token, 3) == 2.0
    assert prices(token, 4) == 1.5
    assert prices(native_asset("apricot"), 9) == 1.0
    assert prices(Asset("banana", "banana-token"), 9) == 1.0  # default base


def test_two_party_model_matches_rational_bob_decisions():
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)
    for shock, swaps in ((0.01, True), (0.25, False)):
        instance = HedgedTwoPartySwap(spec).build()
        prices = TokenPrices(shocked=spec.token_a, fraction=shock, at_height=3)
        contracts = tuple(instance.contracts.values())
        transform = lambda a: rational_party(
            a, two_party_model(spec, prices, contracts)
        )
        out = extract_two_party_outcome(
            instance, execute(instance, {"Bob": transform})
        )
        assert out.swapped is swaps, shock


def test_marginal_model_never_abandons_its_own_redemption():
    """A late shock (after Bob escrowed) must not trigger a walk: the
    escrow is sunk, so completing strictly dominates — the flaw a naive
    whole-protocol valuation has."""
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=1)
    instance = HedgedTwoPartySwap(spec).build()
    prices = TokenPrices(shocked=spec.token_a, fraction=0.30, at_height=5)
    transform = lambda a: rational_party(
        a, two_party_model(spec, prices, tuple(instance.contracts.values()))
    )
    out = extract_two_party_outcome(instance, execute(instance, {"Bob": transform}))
    assert out.swapped  # 30% drop, but Bob was already committed


def test_held_premium_stake_tracks_the_two_party_contract():
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=3)
    instance = HedgedTwoPartySwap(spec).build()
    contracts = tuple(instance.contracts.values())
    assert held_premium_stake("Bob", instance.world.view(), contracts) == 0.0
    execute(instance)  # a full compliant run resolves every premium
    assert held_premium_stake("Bob", instance.world.view(), contracts) == 0.0


def test_pending_gain_is_zero_after_a_completed_swap():
    spec = HedgedTwoPartySpec()
    instance = HedgedTwoPartySwap(spec).build()
    prices = TokenPrices()
    execute(instance)
    view = instance.world.view()
    contracts = tuple(instance.contracts.values())
    assert pending_completion_gain("Bob", view, contracts, prices) == 0.0
    assert pending_completion_gain("Alice", view, contracts, prices) == 0.0


def test_swap_party_model_deters_multi_party_pivot():
    from repro.core.hedged_multi_party import HedgedMultiPartySwap
    from repro.graph.digraph import ring_graph

    for premium, redeemed in ((0, False), (3, True)):
        instance = HedgedMultiPartySwap(
            graph=ring_graph(3), premium=premium, leaders=("P0",)
        ).build()
        schedule = instance.meta["schedule"]
        prices = TokenPrices(
            shocked="p0-token", fraction=0.045, at_height=schedule.p3_start
        )
        contracts = tuple(instance.contracts.values())
        transform = lambda a: rational_party(
            a, swap_party_model("P1", prices, contracts)
        )
        execute(instance, {"P1": transform})
        states = {
            label: instance.contract(label).principal_state
            for label in instance.contracts
        }
        assert all(s == "redeemed" for s in states.values()) is redeemed, (
            premium,
            states,
        )
