"""Tests for rational (opportunistic) actors."""

import pytest

from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.base import Actor
from repro.parties.rational import Opportunist, price_shock, rational_bob
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import execute


def test_price_shock_path():
    price = price_shock(1.0, 0.10, at_height=5)
    assert price(4) == 1.0
    assert price(5) == 0.9
    assert price(9) == 0.9


def test_opportunist_halts_permanently(world):
    keys = world.register_party("X")

    class Chatty(Actor):
        def on_round(self, rnd, view):
            return [self.tx("apricot", "c-1", "ping")]

    flips = iter([True, True, False, True])  # True again after the walk
    actor = Opportunist(Chatty("X", keys), lambda rnd, view: next(flips))
    view = world.view()
    assert actor.on_round(0, view)
    assert actor.on_round(1, view)
    assert actor.on_round(2, view) == []
    assert actor.walked_at == 2
    assert actor.on_round(3, view) == []  # no coming back


def test_base_rational_bob_completes_without_shock():
    instance = BaseTwoPartySwap().build()
    spec = instance.meta["spec"]
    transform = lambda a: rational_bob(a, spec, price_shock(1.0, 0.0, 99))
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert out.swapped


def test_base_rational_bob_walks_on_tiny_drop():
    instance = BaseTwoPartySwap().build()
    spec = instance.meta["spec"]
    transform = lambda a: rational_bob(a, spec, price_shock(1.0, 0.001, at_height=2))
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert not out.swapped
    assert out.alice_premium_net == 0  # and Alice gets nothing for it


def test_hedged_rational_bob_shrugs_off_small_drop():
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)
    instance = HedgedTwoPartySwap(spec).build()
    transform = lambda a: rational_bob(
        a, spec, price_shock(1.0, 0.01, at_height=3),
        premium_contract=instance.contracts["apricot_escrow"],
    )
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert out.swapped  # 1% < the 2% premium: walking is irrational


def test_hedged_rational_bob_pays_when_walking():
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)
    instance = HedgedTwoPartySwap(spec).build()
    transform = lambda a: rational_bob(
        a, spec, price_shock(1.0, 0.25, at_height=3),
        premium_contract=instance.contracts["apricot_escrow"],
    )
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert not out.swapped
    assert out.bob_premium_net < 0  # exercising the option costs p_b
    assert out.alice_premium_net > 0  # the victim is compensated
