"""Deadline boundary semantics: landing exactly *at* a deadline succeeds.

The paper's timing model gives every step exactly Δ: an action submitted in
round ``r`` lands at height ``r + 1`` and is valid while
``height <= deadline``; settlement refunds fire strictly *after* the
deadline.  These tests pin the boundary for every deadline-bearing
contract: a redeem landing exactly at its deadline height succeeds, while
the same redeem one round later reverts and triggers the refund (plus, for
the hedged escrow, the premium award).
"""

import pytest

from repro.chain.block import Transaction
from repro.contracts.auction import (
    AuctionDeadlines,
    CoinAuctionContract,
    TicketAuctionContract,
)
from repro.contracts.hedged_escrow import HedgedEscrow
from repro.contracts.htlc import HTLC
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey
from repro.sim.world import World

SECRET = Secret.from_text("boundary-secret")


def _tx(chain, sender, address, method, **args):
    return Transaction(
        chain=chain.name, sender=sender, contract=address, method=method, args=args
    )


def _advance_to(chain, height):
    while chain.height < height:
        chain.advance()


# ----------------------------------------------------------------------
# HTLC: timelock
# ----------------------------------------------------------------------
@pytest.fixture
def htlc(chain):
    asset = chain.asset("apricot")
    chain.ledger.mint(asset, "alice", 100)
    address = chain.deploy(
        HTLC(
            asset=asset,
            amount=100,
            owner="alice",
            counterparty="bob",
            hashlock=SECRET.hashlock,
            timelock=4,
            escrow_deadline=2,
        )
    )
    return chain, address, asset


def test_htlc_redeem_exactly_at_timelock_succeeds(htlc):
    chain, address, asset = htlc
    chain.advance([_tx(chain, "alice", address, "escrow")])
    _advance_to(chain, 3)
    (tx,) = chain.advance([_tx(chain, "bob", address, "redeem", preimage=SECRET.preimage)])
    assert chain.height == 4  # exactly the timelock
    assert tx.receipt.ok
    assert chain.contract_at(address).state == HTLC.REDEEMED
    assert chain.ledger.balance(asset, "bob") == 100


def test_htlc_redeem_one_round_late_reverts_and_refunds(htlc):
    chain, address, asset = htlc
    chain.advance([_tx(chain, "alice", address, "escrow")])
    _advance_to(chain, 4)
    (tx,) = chain.advance([_tx(chain, "bob", address, "redeem", preimage=SECRET.preimage)])
    assert chain.height == 5
    assert tx.receipt.status == "reverted"
    assert "timelock expired" in tx.receipt.error
    # Settlement on the same tick returns the principal to the owner.
    assert chain.contract_at(address).state == HTLC.REFUNDED
    assert chain.ledger.balance(asset, "alice") == 100


def test_htlc_escrow_boundary(htlc):
    chain, address, _ = htlc
    chain.advance()
    (tx,) = chain.advance([_tx(chain, "alice", address, "escrow")])
    assert chain.height == 2  # exactly the escrow deadline
    assert tx.receipt.ok
    late_chain, late_address, _ = _fresh_htlc(chain.registry)
    _advance_to(late_chain, 2)
    (late,) = late_chain.advance([_tx(late_chain, "alice", late_address, "escrow")])
    assert late.receipt.status == "reverted"
    assert "escrow deadline passed" in late.receipt.error


def _fresh_htlc(registry):
    from repro.chain.blockchain import Blockchain

    chain = Blockchain("testchain", registry)
    asset = chain.asset("apricot")
    chain.ledger.mint(asset, "alice", 100)
    address = chain.deploy(
        HTLC(
            asset=asset,
            amount=100,
            owner="alice",
            counterparty="bob",
            hashlock=SECRET.hashlock,
            timelock=4,
            escrow_deadline=2,
        )
    )
    return chain, address, asset


# ----------------------------------------------------------------------
# HedgedEscrow: redemption timelock + premium consequences
# ----------------------------------------------------------------------
@pytest.fixture
def escrow(chain):
    asset = chain.asset("apricot")
    chain.ledger.mint(asset, "alice", 100)
    chain.ledger.mint(chain.native, "bob", 5)
    address = chain.deploy(
        HedgedEscrow(
            principal_asset=asset,
            principal_amount=100,
            principal_owner="alice",
            redeemer="bob",
            hashlock=SECRET.hashlock,
            premium_amount=5,
            premium_deadline=1,
            principal_deadline=2,
            redemption_timelock=4,
        )
    )
    return chain, address, asset


def _fund_and_escrow(chain, address):
    chain.advance([_tx(chain, "bob", address, "deposit_premium")])
    chain.advance([_tx(chain, "alice", address, "escrow_principal")])


def test_hedged_escrow_redeem_exactly_at_timelock_refunds_premium(escrow):
    chain, address, asset = escrow
    _fund_and_escrow(chain, address)
    _advance_to(chain, 3)
    (tx,) = chain.advance(
        [_tx(chain, "bob", address, "redeem", preimage=SECRET.preimage)]
    )
    assert chain.height == 4  # exactly the redemption timelock
    assert tx.receipt.ok
    contract = chain.contract_at(address)
    assert contract.principal_state == "redeemed"
    assert contract.premium_state == "refunded"
    assert chain.ledger.balance(asset, "bob") == 100
    assert chain.ledger.balance(chain.native, "bob") == 5


def test_hedged_escrow_redeem_one_round_late_awards_premium(escrow):
    chain, address, asset = escrow
    _fund_and_escrow(chain, address)
    _advance_to(chain, 4)
    (tx,) = chain.advance(
        [_tx(chain, "bob", address, "redeem", preimage=SECRET.preimage)]
    )
    assert chain.height == 5
    assert tx.receipt.status == "reverted"
    assert "timelock expired" in tx.receipt.error
    # The same settlement tick refunds Alice's principal AND pays her the
    # premium as lockup compensation — Bob's renege cost, §5.2.
    contract = chain.contract_at(address)
    assert contract.principal_state == "refunded"
    assert contract.premium_state == "awarded"
    assert chain.ledger.balance(asset, "alice") == 100
    assert chain.ledger.balance(chain.native, "alice") == 5
    assert chain.ledger.balance(chain.native, "bob") == 0


def test_hedged_escrow_premium_and_principal_deadlines(escrow):
    chain, address, _ = escrow
    (tx,) = chain.advance([_tx(chain, "bob", address, "deposit_premium")])
    assert chain.height == 1 and tx.receipt.ok  # exactly premium_deadline
    (tx,) = chain.advance([_tx(chain, "alice", address, "escrow_principal")])
    assert chain.height == 2 and tx.receipt.ok  # exactly principal_deadline
    # A second instance one round later on each: both reverted.
    chain2, address2, _ = escrow_like(chain.registry)
    chain2.advance()
    (late_premium,) = chain2.advance([_tx(chain2, "bob", address2, "deposit_premium")])
    assert late_premium.receipt.status == "reverted"
    assert "premium deadline passed" in late_premium.receipt.error


def escrow_like(registry):
    from repro.chain.blockchain import Blockchain

    chain = Blockchain("testchain", registry)
    asset = chain.asset("apricot")
    chain.ledger.mint(asset, "alice", 100)
    chain.ledger.mint(chain.native, "bob", 5)
    address = chain.deploy(
        HedgedEscrow(
            principal_asset=asset,
            principal_amount=100,
            principal_owner="alice",
            redeemer="bob",
            hashlock=SECRET.hashlock,
            premium_amount=5,
            premium_deadline=1,
            principal_deadline=2,
            redemption_timelock=4,
        )
    )
    return chain, address, asset


# ----------------------------------------------------------------------
# auction contracts: bidding close and hashkey timeout
# ----------------------------------------------------------------------
@pytest.fixture
def auction_world():
    world = World(["tickets", "coins"])
    alice = world.register_party("Alice")
    world.register_party("Bob")
    world.register_party("Carol")
    secrets = {b: Secret.from_text(f"designates-{b}") for b in ("Bob", "Carol")}
    hashlocks = {b: s.hashlock for b, s in secrets.items()}
    deadlines = AuctionDeadlines()  # bidding=2, hashkey_base=2
    coins = world.chain("coins")
    tickets = world.chain("tickets")
    world.fund("coins", "Bob", "coin", 500)
    world.fund("tickets", "Alice", "ticket", 1)
    coin_addr = coins.deploy(
        CoinAuctionContract(
            auctioneer="Alice",
            bidders=("Bob", "Carol"),
            hashlocks=hashlocks,
            public_of=world.public_of,
            deadlines=deadlines,
            coin_asset=coins.asset("coin"),
        )
    )
    ticket_addr = tickets.deploy(
        TicketAuctionContract(
            auctioneer="Alice",
            bidders=("Bob", "Carol"),
            hashlocks=hashlocks,
            public_of=world.public_of,
            deadlines=deadlines,
            ticket_asset=tickets.asset("ticket"),
            tickets=1,
        )
    )
    key = HashKey.originate(secrets["Bob"], alice, "Alice")
    return world, coin_addr, ticket_addr, key


def test_auction_bid_exactly_at_close_accepted(auction_world):
    world, coin_addr, _, _ = auction_world
    coins = world.chain("coins")
    coins.advance()
    (tx,) = coins.advance([_tx(coins, "Bob", coin_addr, "bid", amount=120)])
    assert coins.height == 2  # exactly the bidding deadline
    assert tx.receipt.ok
    assert coins.contract_at(coin_addr).bids == {"Bob": 120}


def test_auction_bid_one_round_late_rejected(auction_world):
    world, coin_addr, _, _ = auction_world
    coins = world.chain("coins")
    _advance_to(coins, 2)
    (tx,) = coins.advance([_tx(coins, "Bob", coin_addr, "bid", amount=120)])
    assert coins.height == 3
    assert tx.receipt.status == "reverted"
    assert "bidding closed" in tx.receipt.error


def test_auction_hashkey_exactly_at_timeout_accepted(auction_world):
    world, _, ticket_addr, key = auction_world
    tickets = world.chain("tickets")
    assert key.length == 1  # deadline = hashkey_base + |q| = 3
    _advance_to(tickets, 2)
    (tx,) = tickets.advance([_tx(tickets, "Alice", ticket_addr, "present_hashkey", hashkey=key)])
    assert tickets.height == 3
    assert tx.receipt.ok
    assert "Bob" in tickets.contract_at(ticket_addr).accepted


def test_auction_hashkey_one_round_late_rejected(auction_world):
    world, _, ticket_addr, key = auction_world
    tickets = world.chain("tickets")
    _advance_to(tickets, 3)
    (tx,) = tickets.advance([_tx(tickets, "Alice", ticket_addr, "present_hashkey", hashkey=key)])
    assert tickets.height == 4
    assert tx.receipt.status == "reverted"
    assert "hashkey timed out" in tx.receipt.error
    assert not tickets.contract_at(ticket_addr).accepted
