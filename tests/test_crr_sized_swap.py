"""End-to-end: premiums sized by Cox-Ross-Rubinstein, per §4.

"The premiums can be estimated using formulas such as the Cox-Ross-
Rubinstein option pricing model."  These tests wire the pricing module
into the actual protocol: size ``p_a``/``p_b`` from the CRR value of the
counterparty's walk-away option, run the hedged swap, and check the
deterrence arithmetic holds with the derived numbers.
"""

import math

import pytest

from repro.analysis.options import suggest_premium
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.rational import price_shock, rational_bob
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute

PRINCIPAL = 10_000
SIGMA = 1.2  # a volatile token, annualized


def crr_spec() -> HedgedTwoPartySpec:
    """Premiums = CRR value of the option to renege over the lockup."""
    # Bob's optionality spans Alice's escrow lockup (t_B − t_a,e = 3Δ);
    # Alice's spans Bob's (t_A − t_b,e = 1Δ) plus her earlier premium risk.
    p_b = math.ceil(suggest_premium(PRINCIPAL, SIGMA, lockup_deltas=3))
    p_a = math.ceil(suggest_premium(PRINCIPAL, SIGMA, lockup_deltas=4))
    return HedgedTwoPartySpec(
        amount_a=PRINCIPAL, amount_b=PRINCIPAL, premium_a=p_a, premium_b=p_b
    )


def test_crr_premiums_are_a_few_percent():
    spec = crr_spec()
    assert 0 < spec.premium_b < PRINCIPAL * 0.10
    assert spec.premium_a >= spec.premium_b  # longer exposure costs more


def test_crr_sized_swap_completes():
    spec = crr_spec()
    instance = HedgedTwoPartySwap(spec).build()
    result = execute(instance)
    out = extract_two_party_outcome(instance, result)
    assert out.swapped
    assert out.alice_premium_net == 0 and out.bob_premium_net == 0


def test_crr_sized_compensation_flows():
    spec = crr_spec()
    instance = HedgedTwoPartySwap(spec).build()
    result = execute(instance, {"Bob": lambda a: halt_at(a, 3)})
    out = extract_two_party_outcome(instance, result)
    assert out.alice_premium_net == spec.premium_b
    assert out.bob_premium_net == -spec.premium_b


def test_crr_premium_deters_rational_bob_at_fair_odds():
    """A shock smaller than the CRR premium fraction cannot tempt Bob."""
    spec = crr_spec()
    fraction = spec.premium_b / PRINCIPAL
    instance = HedgedTwoPartySwap(spec).build()
    transform = lambda a: rational_bob(
        a, spec, price_shock(1.0, fraction * 0.5, at_height=3),
        premium_contract=instance.contracts["apricot_escrow"],
    )
    result = execute(instance, {"Bob": transform})
    out = extract_two_party_outcome(instance, result)
    assert out.swapped


def test_crr_premium_grows_with_volatility_and_value():
    calm = suggest_premium(PRINCIPAL, 0.3, lockup_deltas=3)
    wild = suggest_premium(PRINCIPAL, 2.0, lockup_deltas=3)
    assert wild > calm
    small = suggest_premium(100, SIGMA, lockup_deltas=3)
    large = suggest_premium(1_000_000, SIGMA, lockup_deltas=3)
    assert abs(large / small - 10_000) / 10_000 < 0.01  # homogeneous of degree 1
