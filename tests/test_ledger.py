"""Unit tests for the journaled ledger."""

import pytest

from repro.chain.assets import Asset, native_asset
from repro.chain.ledger import Ledger
from repro.errors import InsufficientFunds, LedgerError

APRICOT = Asset("testchain", "apricot")
NATIVE = native_asset("testchain")
FOREIGN = Asset("otherchain", "mango")


@pytest.fixture
def ledger():
    led = Ledger("testchain")
    led.mint(APRICOT, "alice", 100)
    led.mint(NATIVE, "alice", 10)
    return led


def test_initial_balances(ledger):
    assert ledger.balance(APRICOT, "alice") == 100
    assert ledger.balance(APRICOT, "bob") == 0


def test_transfer_moves_funds(ledger):
    ledger.transfer(APRICOT, "alice", "bob", 30)
    assert ledger.balance(APRICOT, "alice") == 70
    assert ledger.balance(APRICOT, "bob") == 30


def test_transfer_conserves_supply(ledger):
    before = ledger.total_supply(APRICOT)
    ledger.transfer(APRICOT, "alice", "bob", 42)
    assert ledger.total_supply(APRICOT) == before


def test_transfer_insufficient_funds(ledger):
    with pytest.raises(InsufficientFunds):
        ledger.transfer(APRICOT, "alice", "bob", 101)


def test_transfer_negative_amount_rejected(ledger):
    with pytest.raises(LedgerError):
        ledger.transfer(APRICOT, "alice", "bob", -1)


def test_transfer_to_self_is_noop(ledger):
    ledger.transfer(APRICOT, "alice", "alice", 60)
    assert ledger.balance(APRICOT, "alice") == 100


def test_foreign_asset_rejected(ledger):
    with pytest.raises(LedgerError, match="isolated"):
        ledger.transfer(FOREIGN, "alice", "bob", 1)
    with pytest.raises(LedgerError, match="isolated"):
        ledger.mint(FOREIGN, "alice", 1)


def test_mint_negative_rejected(ledger):
    with pytest.raises(LedgerError):
        ledger.mint(APRICOT, "alice", -5)


def test_burn(ledger):
    ledger.burn(APRICOT, "alice", 40)
    assert ledger.balance(APRICOT, "alice") == 60
    assert ledger.total_supply(APRICOT) == 60


def test_burn_insufficient(ledger):
    with pytest.raises(InsufficientFunds):
        ledger.burn(APRICOT, "alice", 200)


def test_rollback_restores_balances(ledger):
    ledger.begin()
    ledger.transfer(APRICOT, "alice", "bob", 50)
    ledger.transfer(NATIVE, "alice", "carol", 5)
    ledger.rollback()
    assert ledger.balance(APRICOT, "alice") == 100
    assert ledger.balance(APRICOT, "bob") == 0
    assert ledger.balance(NATIVE, "carol") == 0


def test_commit_keeps_effects(ledger):
    ledger.begin()
    ledger.transfer(APRICOT, "alice", "bob", 50)
    ledger.commit()
    assert ledger.balance(APRICOT, "bob") == 50


def test_nested_journal_inner_rollback(ledger):
    ledger.begin()
    ledger.transfer(APRICOT, "alice", "bob", 10)
    ledger.begin()
    ledger.transfer(APRICOT, "alice", "bob", 20)
    ledger.rollback()
    ledger.commit()
    assert ledger.balance(APRICOT, "bob") == 10


def test_nested_journal_outer_rollback_undoes_committed_inner(ledger):
    ledger.begin()
    ledger.begin()
    ledger.transfer(APRICOT, "alice", "bob", 20)
    ledger.commit()
    ledger.rollback()
    assert ledger.balance(APRICOT, "bob") == 0


def test_rollback_without_begin_raises(ledger):
    with pytest.raises(LedgerError):
        ledger.rollback()
    with pytest.raises(LedgerError):
        ledger.commit()


def test_accounts_holding(ledger):
    ledger.transfer(APRICOT, "alice", "bob", 25)
    holders = ledger.accounts_holding(APRICOT)
    assert holders == {"alice": 75, "bob": 25}


def test_snapshot_excludes_zero_balances(ledger):
    ledger.transfer(APRICOT, "alice", "bob", 100)
    snap = ledger.snapshot()
    assert (APRICOT, "alice") not in snap
    assert snap[(APRICOT, "bob")] == 100
