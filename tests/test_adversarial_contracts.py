"""Adversarial contract-level tests: forged hashkeys, replay, injections.

The threat model (§3.2) says contracts enforce ordering, timing, and
well-formedness so Byzantine parties can only choose among *legal* actions.
These tests attack the contracts directly with illegal ones — forged
signatures, replayed chains, stolen premiums — and verify they all revert.
"""

import pytest

from repro.chain.block import Transaction
from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey, SignedPath
from repro.crypto.keys import KeyPair
from repro.graph.digraph import figure3_graph
from repro.parties.strategies import Deviant
from repro.protocols.instance import execute
from repro.sim.runner import SyncRunner


def _build():
    return HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()


def _run_until(instance, rounds):
    runner = SyncRunner(instance.world, list(instance.actors.values()))
    return runner.run(rounds, parties=list(instance.actors))


def _call(instance, chain_name, address, sender, method, **args):
    chain = instance.world.chain(chain_name)
    return chain.execute(
        Transaction(chain=chain_name, sender=sender, contract=address, method=method, args=args)
    )


# ----------------------------------------------------------------------
# hashkey forgery and replay against arc contracts
# ----------------------------------------------------------------------
def test_forged_secret_rejected():
    """Presenting a made-up secret for the leader's lock reverts."""
    instance = _build()
    _run_until(instance, 9)  # through phase 3, before the real release lands
    chain_name, address = instance.meta["addresses"][("B", "A")]
    fake = HashKey.originate(Secret.from_text("not-the-secret"), instance.actors["A"].keypair, "A")
    tx = _call(instance, chain_name, address, "A", "present_hashkey", hashkey=fake)
    assert tx.receipt.status == "reverted"
    assert "unknown leader" in tx.receipt.error or "verification" in tx.receipt.error


def test_hashkey_with_wrong_redeemer_rejected():
    """A hashkey whose path starts at the wrong vertex is refused."""
    instance = _build()
    _run_until(instance, 10)
    secret = instance.actors["A"].secret
    # path (A) is valid on (B,A) and (C,A) but NOT on (B,C) (redeemer C)
    key = HashKey.originate(secret, instance.actors["A"].keypair, "A")
    chain_name, address = instance.meta["addresses"][("B", "C")]
    tx = _call(instance, chain_name, address, "A", "present_hashkey", hashkey=key)
    assert tx.receipt.status == "reverted"
    assert "redeemer" in tx.receipt.error


def test_hashkey_extension_without_key_impossible():
    """B cannot extend a hashkey chain as C (signature check)."""
    instance = _build()
    _run_until(instance, 10)
    secret = instance.actors["A"].secret
    b_keys = instance.actors["B"].keypair
    # B signs an extension but names C as the extender
    forged = HashKey.originate(secret, instance.actors["A"].keypair, "A").extend(b_keys, "C")
    chain_name, address = instance.meta["addresses"][("B", "C")]
    tx = _call(instance, chain_name, address, "B", "present_hashkey", hashkey=forged)
    assert tx.receipt.status == "reverted"


def test_premium_chain_cannot_unlock_hashkeys():
    """A redemption-premium chain replayed as a hashkey fails payload
    binding (different payload namespace)."""
    instance = _build()
    _run_until(instance, 10)
    a = instance.actors["A"]
    premium_chain = SignedPath.create(
        f"rpremium:{a.secret.hashlock.digest}", a.keypair, "A"
    )
    spliced = HashKey(a.secret, premium_chain)
    chain_name, address = instance.meta["addresses"][("B", "A")]
    tx = _call(instance, chain_name, address, "A", "present_hashkey", hashkey=spliced)
    assert tx.receipt.status == "reverted"


# ----------------------------------------------------------------------
# premium deposit attacks
# ----------------------------------------------------------------------
def test_redemption_premium_from_wrong_sender_rejected():
    instance = _build()
    _run_until(instance, 4)  # into phase 2
    a = instance.actors["A"]
    chain = SignedPath.create(f"rpremium:{a.secret.hashlock.digest}", a.keypair, "A")
    # arc (B,A): only the redeemer A may deposit; B tries
    chain_name, address = instance.meta["addresses"][("B", "A")]
    tx = _call(
        instance, chain_name, address, "B", "deposit_redemption_premium", path_chain=chain
    )
    assert tx.receipt.status == "reverted"
    assert "only A" in tx.receipt.error


def test_duplicate_redemption_premium_rejected():
    instance = _build()
    _run_until(instance, 5)  # leader origination landed
    a = instance.actors["A"]
    chain = SignedPath.create(f"rpremium:{a.secret.hashlock.digest}", a.keypair, "A")
    chain_name, address = instance.meta["addresses"][("B", "A")]
    tx = _call(
        instance, chain_name, address, "A", "deposit_redemption_premium", path_chain=chain
    )
    assert tx.receipt.status == "reverted"
    assert "already posted" in tx.receipt.error


def test_escrow_premium_wrong_sender_rejected():
    instance = _build()
    chain_name, address = instance.meta["addresses"][("B", "A")]
    instance.world.chain(chain_name).advance()
    tx = _call(instance, chain_name, address, "C", "deposit_escrow_premium")
    assert tx.receipt.status == "reverted"


def test_principal_escrow_before_activation_rejected():
    """Phase ordering is contract-enforced: no escrow before activation."""
    instance = _build()
    _run_until(instance, 2)  # phase 1 only
    chain_name, address = instance.meta["addresses"][("B", "A")]
    tx = _call(instance, chain_name, address, "B", "escrow_principal")
    assert tx.receipt.status == "reverted"
    assert "not activated" in tx.receipt.error


# ----------------------------------------------------------------------
# injection through the Deviant wrapper during a live run
# ----------------------------------------------------------------------
def test_injected_premature_hashkey_release_is_harmless():
    """The leader releasing its key EARLY (during phase 3) is legal but
    cannot hurt anyone: redemption still requires every arc's full set."""
    instance = _build()
    a = instance.actors["A"]
    secret = a.secret
    chain_name, address = instance.meta["addresses"][("B", "A")]
    early = Transaction(
        chain=chain_name,
        sender="A",
        contract=address,
        method="present_hashkey",
        args={"hashkey": HashKey.originate(secret, a.keypair, "A")},
    )
    result = execute(instance, {"A": lambda actor: Deviant(actor, extra={7: [early]})})
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed  # protocol still completes normally
    assert all(net == 0 for net in out.premium_net.values())


def test_stranger_cannot_touch_contracts():
    """An account that is not a protocol party can trigger nothing."""
    instance = _build()
    instance.world.register_party("Mallory")
    _run_until(instance, 7)
    chain_name, address = instance.meta["addresses"][("B", "A")]
    for method in ("escrow_principal", "deposit_escrow_premium"):
        tx = _call(instance, chain_name, address, "Mallory", method)
        assert tx.receipt.status == "reverted"


def test_contract_funds_unreachable_by_direct_transfer():
    """Ledger funds held by a contract move only through its methods."""
    instance = _build()
    result = _run_until(instance, 8)  # premiums + principals in escrow
    chain = instance.world.chain("a-chain")
    address = instance.meta["addresses"][("A", "B")][1]
    held = chain.ledger.balance(chain.native, address)
    assert held > 0
    # nothing in the public API lets Mallory name a contract as source;
    # transactions execute contract methods only, and the arc contract has
    # no method paying arbitrary senders — sweep all public methods:
    contract = chain.contract_at(address)
    public = [m for m in dir(contract) if not m.startswith("_") and callable(getattr(contract, m))]
    for method in public:
        if method in ("install", "on_tick", "require", "emit", "pull", "push",
                      "balance", "contract_at", "arc_activated"):
            continue
        tx = _call(instance, "a-chain", address, "Mallory", method)
        assert tx.receipt.status == "reverted", method
    assert chain.ledger.balance(chain.native, address) == held
