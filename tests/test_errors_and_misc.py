"""Tests for the error hierarchy, events, and small utilities."""

import pytest

from repro import __version__
from repro.chain.events import Event
from repro.errors import (
    AuthError,
    ChainError,
    CheckerError,
    ContractError,
    CryptoError,
    GraphError,
    InsufficientFunds,
    LedgerError,
    ProtocolError,
    ReproError,
    StateError,
    TimeoutViolation,
    UnknownAsset,
)


def test_every_error_is_a_repro_error():
    for err in (
        LedgerError, InsufficientFunds, UnknownAsset, ChainError,
        ContractError, AuthError, TimeoutViolation, StateError,
        CryptoError, ProtocolError, GraphError, CheckerError,
    ):
        assert issubclass(err, ReproError)


def test_contract_error_family():
    """Contract subfamilies revert transactions uniformly."""
    for err in (AuthError, TimeoutViolation, StateError):
        assert issubclass(err, ContractError)


def test_ledger_error_family():
    assert issubclass(InsufficientFunds, LedgerError)
    assert issubclass(UnknownAsset, LedgerError)


def test_catching_the_base_class():
    with pytest.raises(ReproError):
        raise InsufficientFunds("broke")


def test_version_is_exposed():
    assert __version__ == "1.0.0"


def test_event_string_format():
    event = Event(chain="apricot", contract="c-1", name="redeemed", height=5,
                  data={"to": "Bob", "amount": 3})
    text = str(event)
    assert "h=5" in text and "apricot/c-1" in text
    assert "redeemed(amount=3, to=Bob)" in text


def test_event_is_immutable():
    event = Event("apricot", "c-1", "x", 1)
    with pytest.raises(Exception):
        event.height = 2


def test_benchmark_table_formatter():
    from benchmarks.tables import format_table

    text = format_table("Title", ("col_a", "b"), [(1, "xy"), (10, "z")])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "col_a" in lines[2]
    assert lines[-1].startswith("10")
