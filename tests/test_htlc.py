"""Unit tests for the plain HTLC contract (§5.1 building block)."""

import pytest

from repro.chain.block import Transaction
from repro.contracts.htlc import HTLC
from repro.crypto.hashing import Secret

SECRET = Secret.from_text("htlc-secret")


@pytest.fixture
def setup(chain):
    asset = chain.asset("apricot")
    chain.ledger.mint(asset, "alice", 100)
    address = chain.deploy(
        HTLC(
            asset=asset,
            amount=100,
            owner="alice",
            counterparty="bob",
            hashlock=SECRET.hashlock,
            timelock=4,
            escrow_deadline=1,
        )
    )
    return chain, address, asset


def _call(chain, address, sender, method, **args):
    return chain.execute(
        Transaction(chain=chain.name, sender=sender, contract=address, method=method, args=args)
    )


def test_escrow_moves_principal(setup):
    chain, address, asset = setup
    chain.advance()
    tx = _call(chain, address, "alice", "escrow")
    assert tx.receipt.ok
    assert chain.ledger.balance(asset, address) == 100
    assert chain.contract_at(address).state == HTLC.ESCROWED


def test_only_owner_escrows(setup):
    chain, address, _ = setup
    chain.advance()
    tx = _call(chain, address, "bob", "escrow")
    assert tx.receipt.status == "reverted"


def test_escrow_after_deadline_rejected(setup):
    chain, address, _ = setup
    chain.advance()
    chain.advance()  # height 2 > escrow_deadline 1
    tx = _call(chain, address, "alice", "escrow")
    assert tx.receipt.status == "reverted"
    assert "deadline" in tx.receipt.error


def test_redeem_with_correct_preimage(setup):
    chain, address, asset = setup
    chain.advance()
    _call(chain, address, "alice", "escrow")
    chain.advance()
    tx = _call(chain, address, "bob", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.ok
    assert chain.ledger.balance(asset, "bob") == 100
    contract = chain.contract_at(address)
    assert contract.state == HTLC.REDEEMED
    assert contract.revealed_preimage == SECRET.preimage


def test_redeem_wrong_preimage_rejected(setup):
    chain, address, _ = setup
    chain.advance()
    _call(chain, address, "alice", "escrow")
    tx = _call(chain, address, "bob", "redeem", preimage=b"wrong")
    assert tx.receipt.status == "reverted"
    assert "preimage" in tx.receipt.error


def test_redeem_before_escrow_rejected(setup):
    chain, address, _ = setup
    chain.advance()
    tx = _call(chain, address, "bob", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.status == "reverted"


def test_redeem_after_timelock_rejected_and_refunded(setup):
    chain, address, asset = setup
    chain.advance()
    _call(chain, address, "alice", "escrow")
    for _ in range(4):  # heights 2..5; timelock 4 expires at 5
        chain.advance()
    tx = _call(chain, address, "bob", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.status == "reverted"
    contract = chain.contract_at(address)
    assert contract.state == HTLC.REFUNDED
    assert chain.ledger.balance(asset, "alice") == 100


def test_refund_happens_exactly_after_timelock(setup):
    chain, address, _ = setup
    chain.advance()
    _call(chain, address, "alice", "escrow")
    for _ in range(3):  # heights 2, 3, 4 — still within timelock
        chain.advance()
    assert chain.contract_at(address).state == HTLC.ESCROWED
    chain.advance()  # height 5 > 4 triggers the refund
    assert chain.contract_at(address).state == HTLC.REFUNDED


def test_lockup_duration_measured(setup):
    chain, address, _ = setup
    chain.advance()
    _call(chain, address, "alice", "escrow")
    for _ in range(4):
        chain.advance()
    # escrowed at height 1, refunded at height 5
    assert chain.contract_at(address).lockup_duration == 4


def test_double_escrow_rejected(setup):
    chain, address, _ = setup
    chain.advance()
    assert _call(chain, address, "alice", "escrow").receipt.ok
    tx = _call(chain, address, "alice", "escrow")
    assert tx.receipt.status == "reverted"


def test_anyone_with_secret_can_trigger_redeem_to_counterparty(setup):
    """Redemption pays the designated counterparty regardless of sender."""
    chain, address, asset = setup
    chain.advance()
    _call(chain, address, "alice", "escrow")
    tx = _call(chain, address, "carol", "redeem", preimage=SECRET.preimage)
    assert tx.receipt.ok
    assert chain.ledger.balance(asset, "bob") == 100
