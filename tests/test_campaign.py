"""Tests for the campaign engine: matrix expansion, backends, digests."""

import pytest

from repro.campaign import (
    CampaignRunner,
    ScenarioMatrix,
    default_matrix,
    enumerate_profiles,
    run_scenario,
)
from repro.checker import ModelChecker, halt_strategies, properties
from repro.core.hedged_two_party import HedgedTwoPartySwap


def two_party_builder():
    return HedgedTwoPartySwap().build()


def small_matrix(seed: int = 0) -> ScenarioMatrix:
    matrix = ScenarioMatrix(seed=seed)
    matrix.add_block(
        family="two-party",
        schedule="default",
        builder=two_party_builder,
        properties=(properties.no_stuck_escrow, properties.two_party_hedged),
        strategies={p: halt_strategies(8) for p in ("Alice", "Bob")},
        max_adversaries=2,
    )
    return matrix


# ----------------------------------------------------------------------
# matrix expansion
# ----------------------------------------------------------------------
def test_matrix_len_matches_enumeration():
    matrix = small_matrix()
    scenarios = list(matrix.scenarios())
    # 1 compliant + 2*8 singles + 8*8 pairs
    assert len(matrix) == len(scenarios) == 1 + 16 + 64


def test_scenario_indices_and_labels_are_stable():
    first = list(small_matrix().scenarios())
    second = list(small_matrix().scenarios())
    assert [s.index for s in first] == list(range(len(first)))
    assert [s.label for s in first] == [s.label for s in second]
    assert first[0].label == "two-party/default/all-compliant"
    assert first[1].label == "two-party/default/Alice:halt@0"


def test_scenario_axes_carry_strategy_and_round():
    scenarios = list(small_matrix().scenarios())
    axes = dict(scenarios[1].axes)
    assert axes["family"] == "two-party"
    assert axes["strategy"] == "halt"
    assert axes["round"] == "0"
    assert axes["adversaries"] == "Alice"
    pair_axes = dict(scenarios[-1].axes)
    assert pair_axes["round"] == "multi"


def test_limit_subsamples_evenly_across_families():
    # Coverage is proportional to family size, so the limit must keep the
    # stride (total // limit) below the smallest family's scenario count
    # for every family to appear.
    matrix = default_matrix()
    smallest = min(matrix.block_sizes().values())
    limit = max(300, 2 * (len(matrix) // smallest))
    limited = list(matrix.scenarios(limit=limit))
    assert len(limited) == limit
    families = {dict(s.axes)["family"] for s in limited}
    assert families == set(matrix.families())


def test_matrix_digest_depends_on_seed_and_content():
    assert small_matrix(seed=0).digest() != small_matrix(seed=1).digest()
    assert small_matrix(seed=0).digest() == small_matrix(seed=0).digest()
    bigger = small_matrix()
    bigger.add_block(
        family="extra",
        schedule="x",
        builder=two_party_builder,
        properties=(),
        strategies={"Alice": halt_strategies(2)},
    )
    assert bigger.digest() != small_matrix().digest()


def test_default_matrix_rejects_unknown_family():
    with pytest.raises(ValueError):
        default_matrix(families=["two-party", "nope"])


def test_default_matrix_scale_and_coverage():
    matrix = default_matrix()
    sizes = matrix.block_sizes()
    assert set(sizes) == {
        "two-party",
        "multi-party",
        "broker",
        "auction",
        "sealed-auction",
        "bootstrap",
    }
    assert len(matrix) >= 3000  # the acceptance-scale matrix
    assert all(size > 0 for size in sizes.values())


# ----------------------------------------------------------------------
# execution and aggregation
# ----------------------------------------------------------------------
def test_run_scenario_produces_digest_and_payoffs():
    scenario = next(small_matrix().scenarios())
    result = run_scenario(scenario)
    assert result.ok
    assert result.transactions > 0
    assert dict(result.premium_net) == {"Alice": 0, "Bob": 0}
    assert len(result.digest) == 64
    assert result.digest == run_scenario(scenario).digest


def test_campaign_report_aggregates_axes():
    report = CampaignRunner(small_matrix()).run()
    assert report.ok
    assert report.scenarios == 81
    family_rows = report.axis_table("family")
    assert family_rows == [("two-party", 81, 0)]
    by_round = dict(
        (value, count) for value, count, _ in report.axis_table("round")
    )
    assert by_round["multi"] == 64
    payoffs = report.payoff_summary()
    assert payoffs["n"] == 2 * 81
    assert payoffs["min"] <= 0 <= payoffs["max"]


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        CampaignRunner(small_matrix(), backend="threads")


# ----------------------------------------------------------------------
# determinism across backends (satellite: identical run digests)
# ----------------------------------------------------------------------
def test_campaign_digest_identical_across_backends():
    matrix = default_matrix(families=["broker", "bootstrap"], seed=42)
    serial = CampaignRunner(matrix, backend="serial").run()
    process = CampaignRunner(matrix, backend="process", workers=2).run()
    assert serial.ok and process.ok
    assert serial.scenarios == process.scenarios == len(matrix)
    assert serial.run_digest == process.run_digest
    assert [r.digest for r in serial.results] == [r.digest for r in process.results]


def test_campaign_digest_changes_with_seed():
    base = CampaignRunner(default_matrix(families=["bootstrap"], seed=0)).run()
    reseeded = CampaignRunner(default_matrix(families=["bootstrap"], seed=1)).run()
    assert base.run_digest != reseeded.run_digest
    # seed is identity only: the underlying scenario outcomes are identical
    assert [r.digest for r in base.results] == [r.digest for r in reseeded.results]


# ----------------------------------------------------------------------
# the checker as a thin client
# ----------------------------------------------------------------------
def test_model_checker_profiles_order_preserved():
    space = halt_strategies(3)
    checker = ModelChecker(
        builder=two_party_builder,
        properties=[],
        strategies={"Alice": space, "Bob": space},
        max_adversaries=2,
    )
    profiles = list(checker.profiles())
    assert profiles[0] == {}
    assert list(profiles[1]) == ["Alice"]
    assert len(profiles) == 1 + 6 + 9
    assert profiles == [
        dict(p)
        for p in enumerate_profiles({"Alice": space, "Bob": space}, 2, True)
    ]


def test_model_checker_runs_through_campaign_engine():
    checker = ModelChecker(
        builder=two_party_builder,
        properties=[properties.no_stuck_escrow, properties.two_party_hedged],
        strategies={p: halt_strategies(8) for p in ("Alice", "Bob")},
        max_adversaries=1,
        backend="process",
        workers=2,
    )
    report = checker.run()
    assert report.ok
    assert report.scenarios == 17
    assert report.transactions > 0


def test_model_checker_violation_labels_unprefixed():
    def always_fails(instance, result, adversaries):
        return ["boom"]

    checker = ModelChecker(
        builder=two_party_builder,
        properties=[always_fails],
        strategies={"Alice": halt_strategies(1)},
    )
    report = checker.run()
    assert not report.ok
    assert {v.scenario for v in report.violations} == {
        "all-compliant",
        "Alice:halt@0",
    }
