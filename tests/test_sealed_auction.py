"""Tests for the sealed-bid (commit-reveal) auction extension."""

import pytest

from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    SealedBidAuction,
    extract_auction_outcome,
)
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


def run(strategy=AuctioneerStrategy.HONEST, spec=None, deviations=None):
    instance = SealedBidAuction(spec=spec, strategy=strategy).build()
    result = execute(instance, deviations or {})
    return instance, result, extract_auction_outcome(instance, result)


def test_sealed_honest_completes():
    _, result, out = run()
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"
    assert out.coins_delta["Alice"] == 120
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()


def test_commitments_hide_bids_until_reveal():
    """During the bidding round only digests are on-chain."""
    instance = SealedBidAuction().build()
    # run two rounds: commits land at height 2, no amounts yet
    from repro.sim.runner import SyncRunner

    runner = SyncRunner(instance.world, list(instance.actors.values()))
    runner.run(2, parties=list(instance.actors))
    coin = instance.contract("coin")
    assert set(coin.commitments) == {"Bob", "Carol"}
    assert coin.bids == {}


def test_unrevealed_commitment_just_loses():
    """A bidder who commits but never reveals simply drops out."""
    _, _, out = run(deviations={"Bob": lambda a: halt_at(a, 2)})
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Carol"  # only revealed bid wins
    assert out.coins_delta["Bob"] == 0  # nothing was ever deposited


def test_sealed_abandon_compensates_bidders():
    _, _, out = run(strategy=AuctioneerStrategy.ABANDON)
    assert out.coin_outcome == "refunded"
    assert out.premium_net["Bob"] == 1 and out.premium_net["Carol"] == 1
    assert out.premium_net["Alice"] == -2


def test_sealed_publish_loser_refunds_bids():
    _, _, out = run(strategy=AuctioneerStrategy.PUBLISH_LOSER)
    assert out.coin_outcome == "refunded"
    assert out.coins_delta["Bob"] == 0 and out.coins_delta["Carol"] == 0
    assert not out.bid_stolen("Bob") and not out.bid_stolen("Carol")


def test_sealed_single_chain_declaration_heals():
    _, _, out = run(strategy=AuctioneerStrategy.PUBLISH_TICKET_ONLY)
    assert out.coin_outcome == "completed"
    assert out.tickets_to == "Bob"


def test_sealed_three_bidders():
    spec = AuctionSpec(
        bidders=("Bob", "Carol", "Dave"),
        bids={"Bob": 70, "Carol": 150, "Dave": 90},
    )
    _, _, out = run(spec=spec)
    assert out.tickets_to == "Carol"
    assert out.coins_delta["Carol"] == -150
    assert out.coins_delta["Dave"] == 0


def test_sealed_no_bid_stolen_across_strategies():
    for strategy in AuctioneerStrategy:
        _, _, out = run(strategy=strategy)
        for bidder in ("Bob", "Carol"):
            assert not out.bid_stolen(bidder), strategy
