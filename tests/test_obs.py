"""The observability layer (ISSUE 8): digest-inert by construction.

Pins the contracts the telemetry layer makes:

- **digest invariance** (acceptance criterion): a traced run with a
  progress callback produces byte-identical scenario/run/frontier
  digests to the untraced run — across the serial simulator, the pooled
  simulator (worker samples over the fork boundary), and the vectorized
  kernel engine;
- **MetricsSnapshot merge laws**: associative, commutative, identity,
  and order-independent ``merge_all`` — the properties that make
  per-worker samples safe to fold in arrival order (exercised over
  dyadic floats so equality is exact);
- **trace validity**: every emitted trace validates against the
  committed ``trace-schema.json``, the validator rejects malformed
  events, and ``summarize`` accounts ≥95% of wall-clock in named phases;
- **wall vs compute split** (satellites): ``wall_seconds`` rides beside
  ``elapsed_seconds`` (serialized, never digested, summed-compute vs
  merge-wall after ``merge_reports``), and fully-cache-warm runs report
  an honest "all N cached" instead of a nonsense scenarios/second.
"""

import itertools
import json
import os

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignRunner,
    Experiment,
    ResultCache,
    ablate_spec,
    ablation_matrix,
    merge_reports,
)
from repro.obs import (
    TRACE_FORMAT_VERSION,
    MetricsRegistry,
    MetricsSnapshot,
    ProgressMeter,
    ProgressUpdate,
    TimingStat,
    Tracer,
    TraceWriter,
    maybe_inc,
    maybe_span,
    phase_fragments,
    summarize_trace,
    validate_trace_event,
    validate_trace_file,
    worker_sample,
)
from repro.obs.schema import TraceSchemaError

GRID = dict(
    families=("two-party",),
    premium_fractions=(0.0, 0.02, 0.05),
    shock_fractions=(0.045,),
    stages=("staked",),
)


def grid_matrix():
    return ablation_matrix(**GRID)


def traced_run(spec, tmp_path, name):
    trace_path = tmp_path / f"{name}.jsonl"
    tracer = Tracer(TraceWriter(trace_path))
    updates = []
    result = Experiment(spec, tracer=tracer, progress=updates.append).run()
    tracer.close()
    return result, trace_path, updates


# ----------------------------------------------------------------------
# digest invariance: traced == untraced, per engine/backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,spec_kwargs",
    [
        ("kernel", dict(engine="kernel")),
        ("serial", dict(engine="simulator", backend="serial")),
        ("pooled", dict(engine="simulator", backend="pooled", workers=2)),
    ],
)
def test_traced_and_untraced_digests_identical(tmp_path, name, spec_kwargs):
    spec = ablate_spec(**spec_kwargs, **GRID)
    untraced = Experiment(spec).run()
    traced, trace_path, updates = traced_run(spec, tmp_path, name)

    assert traced.frontier.digest == untraced.frontier.digest
    assert traced.campaign.run_digest == untraced.campaign.run_digest
    assert [r.digest for r in traced.campaign.results] == [
        r.digest for r in untraced.campaign.results
    ]
    # The trace actually recorded the run and validates against the
    # committed schema.
    assert validate_trace_file(trace_path) > 0
    # The progress callback saw the whole run land.
    assert updates and updates[-1].done == updates[-1].total


def test_pooled_trace_carries_worker_samples(tmp_path):
    spec = ablate_spec(engine="simulator", backend="pooled", workers=2, **GRID)
    _, trace_path, _ = traced_run(spec, tmp_path, "pooled-workers")
    summary = summarize_trace(trace_path)
    assert summary.workers, "no worker samples crossed the fork boundary"
    assert sum(row.scenarios for row in summary.workers) == 6
    assert all(row.busy_seconds > 0 for row in summary.workers)
    assert summary.worker_skew >= 1.0


# ----------------------------------------------------------------------
# summarize: phase coverage, cache hit-rate, kernel counters
# ----------------------------------------------------------------------
def test_kernel_trace_summary_meets_coverage_contract(tmp_path):
    # The full default lattice, so spans have real durations to cover.
    result, trace_path, _ = traced_run(ablate_spec(), tmp_path, "lattice")
    summary = summarize_trace(trace_path)

    assert summary.root_name == "experiment"
    assert summary.coverage >= 0.95, (
        f"named phases cover only {summary.coverage:.1%} of wall-clock"
    )
    phase_names = {row.name for row in summary.phases}
    assert "campaign.run" in phase_names
    assert "experiment.reduce" in phase_names
    assert summary.counters["kernel.scenarios"] == result.campaign.scenarios
    assert summary.counters["kernel.calibrations"] >= 1
    assert summary.counters["kernel.replays"] >= 1
    assert summary.blocks, "kernel cell groups should emit block spans"
    assert summary.progress_done == summary.progress_total > 0
    rendered = summary.render()
    assert "covered by named phases" in rendered
    assert "kernel:" in rendered


def test_warm_cache_trace_reports_hit_rate(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    CampaignRunner(grid_matrix(), cache=cache).run()  # warm it

    trace_path = tmp_path / "warm.jsonl"
    with Tracer(TraceWriter(trace_path)) as tracer:
        report = CampaignRunner(
            grid_matrix(), cache=cache, tracer=tracer
        ).run()
    assert report.cache_hits == report.scenarios
    summary = summarize_trace(trace_path)
    # The cache stores whole matrix blocks, so trace counters are
    # block-granular (3 blocks here) while the report counts scenarios.
    assert summary.cache_hits == 3
    assert summary.cache_misses == 0
    assert summary.cache_hit_rate == 1.0
    assert "hits (100.0%)" in summary.render()


def test_summarize_keeps_largest_progress_stream(tmp_path):
    trace_path = tmp_path / "nested.jsonl"
    writer = TraceWriter(trace_path)
    writer.write({"type": "span", "name": "experiment", "start": 0.0,
                  "dur": 2.0, "depth": 0, "parent": ""})
    writer.write({"type": "progress", "done": 10, "total": 10, "at": 1.0})
    # A nested probe's tiny stream must not clobber the main run's.
    writer.write({"type": "progress", "done": 2, "total": 2, "at": 1.5})
    writer.close()
    summary = summarize_trace(trace_path)
    assert (summary.progress_done, summary.progress_total) == (10, 10)


# ----------------------------------------------------------------------
# MetricsSnapshot merge laws (property-style, dyadic floats → exact eq)
# ----------------------------------------------------------------------
def _dyadic_snapshots():
    """A deterministic family of snapshots with exactly-mergeable floats."""
    names = ("cache.hit", "kernel.replays", "worker.7.scenarios")
    spans = ("span.dispatch", "span.fold")
    snapshots = []
    for salt in range(6):
        registry = MetricsRegistry()
        for i, name in enumerate(names):
            if (salt + i) % 2 == 0:
                registry.inc(name, (salt * 4 + i) * 0.25)
        for i, name in enumerate(spans):
            if (salt + i) % 3 != 0:
                registry.observe(name, (salt + 1) * 0.125 * (i + 1))
        snapshots.append(registry.snapshot())
    return snapshots


def test_snapshot_merge_is_commutative_and_associative():
    snaps = _dyadic_snapshots()
    for a, b in itertools.combinations(snaps, 2):
        assert a.merge(b) == b.merge(a)
    for a, b, c in itertools.combinations(snaps, 3):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))


def test_snapshot_merge_identity_and_order_independence():
    snaps = _dyadic_snapshots()[:4]
    empty = MetricsSnapshot()
    for snap in snaps:
        assert empty.merge(snap) == snap
        assert snap.merge(empty) == snap
    reference = MetricsSnapshot.merge_all(snaps)
    for perm in itertools.permutations(snaps):
        assert MetricsSnapshot.merge_all(perm) == reference


def test_timing_stat_merge_folds_count_total_min_max():
    stat = TimingStat.single(0.5).merge(TimingStat.single(2.0))
    assert stat == TimingStat(count=2, total=2.5, min=0.5, max=2.0)
    assert stat.mean == 1.25
    assert stat.merge(TimingStat()) == stat
    assert TimingStat().merge(stat) == stat


def test_worker_sample_keys_by_pid_and_merges():
    sample = worker_sample(3, 0.5)
    pid = os.getpid()
    assert sample.counter(f"worker.{pid}.scenarios") == 3
    doubled = sample.merge(sample)
    assert doubled.counter(f"worker.{pid}.scenarios") == 6
    stat = doubled.timing(f"worker.{pid}.busy_seconds")
    assert (stat.count, stat.total) == (2, 1.0)


# ----------------------------------------------------------------------
# tracer primitives
# ----------------------------------------------------------------------
def test_tracer_without_sink_accumulates_phase_fragments():
    tracer = Tracer()
    with tracer.span("dispatch"):
        with tracer.span("block"):
            pass
    with tracer.span("dispatch"):
        pass
    fragments = phase_fragments(tracer.metrics.snapshot())
    assert fragments["dispatch"]["count"] == 2
    assert fragments["dispatch"]["total_seconds"] > 0
    assert "block" in fragments


def test_maybe_helpers_tolerate_none_tracer():
    with maybe_span(None, "anything", label="x"):
        pass
    maybe_inc(None, "counter")
    tracer = Tracer()
    with maybe_span(tracer, "named"):
        pass
    maybe_inc(tracer, "counter", 2)
    snap = tracer.metrics.snapshot()
    assert snap.counter("counter") == 2
    assert snap.timing("span.named").count == 1


def test_trace_file_shape_meta_first_offsets_not_wallclock(tmp_path):
    trace_path = tmp_path / "shape.jsonl"
    with Tracer(TraceWriter(trace_path)) as tracer:
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        tracer.event("mark", detail="x")
        tracer.inc("things", 3)
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert lines[0] == {
        "type": "meta", "name": "repro-trace", "version": TRACE_FORMAT_VERSION
    }
    spans = [e for e in lines if e["type"] == "span"]
    # Inner closes first; offsets are from the tracer epoch, not epoch-1970.
    assert [s["name"] for s in spans] == ["inner", "outer"]
    assert all(0 <= s["start"] < 60 for s in spans)
    assert spans[0]["depth"] == 1 and spans[0]["parent"] == "outer"
    assert spans[1]["depth"] == 0 and spans[1]["parent"] == ""
    assert {"type": "counter", "name": "things", "value": 3} in lines
    # close() is idempotent and every line validates.
    assert validate_trace_file(trace_path) == len(lines)


def test_progress_update_eta_math():
    update = ProgressUpdate(done=2, total=6, elapsed=1.0)
    assert update.rate == 2.0
    assert update.eta == 2.0
    assert update.fraction == pytest.approx(1 / 3)
    assert ProgressUpdate(done=0, total=6, elapsed=1.0).eta is None
    assert ProgressUpdate(done=6, total=6, elapsed=3.0).eta is None
    assert ProgressUpdate(done=0, total=0, elapsed=0.0).fraction == 1.0


def test_progress_meter_throttles_and_forces_final():
    emitted = []
    meter = ProgressMeter(total=100, callback=emitted.append, min_interval=3600)
    for _ in range(100):
        meter.advance()
    meter.finish()
    # First advance emits, the rest are throttled, finish forces the last.
    assert len(emitted) == 2
    assert (emitted[0].done, emitted[-1].done) == (1, 100)

    eager = []
    meter = ProgressMeter(total=3, callback=eager.append, min_interval=0.0)
    for _ in range(3):
        meter.advance()
    assert [u.done for u in eager] == [1, 2, 3]


# ----------------------------------------------------------------------
# the committed trace schema
# ----------------------------------------------------------------------
def test_validator_accepts_all_emitted_event_shapes():
    for event in (
        {"type": "meta", "name": "repro-trace", "version": 1},
        {"type": "span", "name": "x", "start": 0.0, "dur": 1,
         "depth": 0, "parent": "", "attrs": {"label": "a", "n": 2}},
        {"type": "event", "name": "mark", "at": 0.5},
        {"type": "progress", "done": 1, "total": 2, "at": 0.1, "eta": 0.1},
        {"type": "counter", "name": "cache.hit", "value": 3},
        {"type": "timing", "name": "span.x", "count": 1, "total": 0.1,
         "min": 0.1, "max": 0.1},
    ):
        validate_trace_event(event)


@pytest.mark.parametrize(
    "event,match",
    [
        ({"name": "x"}, "unknown trace event type"),
        ({"type": "warp", "name": "x"}, "unknown trace event type"),
        ({"type": "counter", "name": "x"}, "missing required field"),
        ({"type": "counter", "name": "x", "value": "many"}, "must be number"),
        ({"type": "progress", "done": True, "total": 2, "at": 0.1},
         "must be integer"),
        ({"type": "event", "name": "x", "at": 0.1, "surprise": 1},
         "unknown field"),
    ],
)
def test_validator_rejects_malformed_events(event, match):
    with pytest.raises(TraceSchemaError, match=match):
        validate_trace_event(event)


def test_validate_trace_file_requires_leading_meta(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"event","name":"x","at":0.1}\n')
    with pytest.raises(TraceSchemaError, match="meta"):
        validate_trace_file(path)
    path.write_text("")
    with pytest.raises(TraceSchemaError, match="empty"):
        validate_trace_file(path)
    path.write_text(
        '{"type":"meta","name":"repro-trace","version":999}\n'
    )
    with pytest.raises(TraceSchemaError, match="version"):
        validate_trace_file(path)


# ----------------------------------------------------------------------
# wall vs compute split + honest cache-warm rates (satellites 1 and 2)
# ----------------------------------------------------------------------
def test_single_run_wall_equals_compute():
    report = CampaignRunner(grid_matrix()).run()
    assert report.wall_seconds == report.elapsed_seconds
    assert report.fresh_scenarios == report.scenarios
    assert report.scenarios_per_second > 0
    assert report.served_per_second == report.scenarios_per_second
    assert "compute /" not in report.summary()


def test_merged_report_splits_compute_from_wall():
    shards = [
        CampaignRunner(grid_matrix(), shard=(i, 2)).run() for i in (1, 2)
    ]
    merged = merge_reports(shards)
    assert merged.elapsed_seconds == pytest.approx(
        sum(s.elapsed_seconds for s in shards)
    )
    assert merged.wall_seconds > 0
    assert merged.wall_seconds != merged.elapsed_seconds
    assert "compute /" in merged.summary()
    assert "wall" in merged.summary()


def test_fully_warm_run_reports_cached_not_a_rate(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    CampaignRunner(grid_matrix(), cache=cache).run()
    warm = CampaignRunner(grid_matrix(), cache=cache).run()
    assert warm.cache_hits == warm.scenarios == 6
    assert warm.fresh_scenarios == 0
    assert warm.scenarios_per_second == 0.0
    assert warm.served_per_second > 0
    assert "all 6 cached" in warm.summary()
    assert "0/s" not in warm.summary()


def test_wall_seconds_serialized_but_never_digested():
    report = CampaignRunner(grid_matrix()).run()
    payload = json.loads(report.to_json())
    assert payload["wall_seconds"] == report.wall_seconds
    # A different wall_seconds still deserializes and digest-verifies:
    # the field is transport-only, outside the run digest.
    payload["wall_seconds"] = 12345.0
    restored = CampaignReport.from_json(json.dumps(payload))
    assert restored.run_digest == report.run_digest
    assert restored.wall_seconds == 12345.0
    # Pre-split payloads fall back to elapsed_seconds.
    del payload["wall_seconds"]
    legacy = CampaignReport.from_json(json.dumps(payload))
    assert legacy.wall_seconds == legacy.elapsed_seconds
