"""Unit tests for hashkeys and signed path chains (Figure 3b semantics)."""

import pytest

from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey, SignedPath, require_valid_hashkey
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import CryptoError
from repro.graph.digraph import figure3_graph


@pytest.fixture
def parties():
    reg = KeyRegistry()
    keys = {}
    for name in ("A", "B", "C"):
        kp = KeyPair.from_seed(f"seed-{name}", owner=name)
        reg.register(kp)
        keys[name] = kp
    public_of = {name: kp.public for name, kp in keys.items()}
    return reg, keys, public_of


# ----------------------------------------------------------------------
# SignedPath
# ----------------------------------------------------------------------
def test_signed_path_create_and_verify(parties):
    reg, keys, public_of = parties
    chain = SignedPath.create("payload", keys["A"], "A")
    assert chain.verify(reg, public_of)
    assert chain.originator == "A"
    assert chain.head == "A"
    assert chain.length == 1


def test_signed_path_extend(parties):
    reg, keys, public_of = parties
    chain = SignedPath.create("payload", keys["A"], "A").extend(keys["B"], "B")
    assert chain.verify(reg, public_of)
    assert chain.vertices == ("A", "B")
    assert chain.path == ("B", "A")  # paper order: redeemer first


def test_signed_path_wrong_signer_rejected(parties):
    reg, keys, public_of = parties
    # B claims to extend as C (signs with B's key but names C)
    chain = SignedPath.create("payload", keys["A"], "A").extend(keys["B"], "C")
    assert not chain.verify(reg, public_of)


def test_signed_path_tampered_payload_rejected(parties):
    reg, keys, public_of = parties
    chain = SignedPath.create("payload", keys["A"], "A")
    tampered = SignedPath("other", chain.vertices, chain.sigs)
    assert not tampered.verify(reg, public_of)


def test_signed_path_truncation_rejected(parties):
    reg, keys, public_of = parties
    chain = SignedPath.create("p", keys["A"], "A").extend(keys["B"], "B")
    cut = SignedPath(chain.payload, chain.vertices[:1], chain.sigs[1:])
    assert not cut.verify(reg, public_of)


def test_signed_path_simplicity(parties):
    _, keys, _ = parties
    chain = SignedPath.create("p", keys["A"], "A").extend(keys["B"], "B")
    assert chain.is_simple()
    looped = chain.extend(keys["A"], "A")
    assert not looped.is_simple()


def test_signed_path_unknown_vertex_rejected(parties):
    reg, keys, public_of = parties
    chain = SignedPath.create("p", keys["A"], "A").extend(keys["B"], "Z")
    assert not chain.verify(reg, public_of)


# ----------------------------------------------------------------------
# HashKey
# ----------------------------------------------------------------------
def test_hashkey_originate_and_verify(parties):
    reg, keys, public_of = parties
    secret = Secret.from_text("s")
    hk = HashKey.originate(secret, keys["A"], "A")
    assert hk.verify(reg, public_of, secret.hashlock)
    assert hk.leader == "A"
    assert hk.redeemer == "A"
    assert hk.length == 1


def test_hashkey_wrong_lock_rejected(parties):
    reg, keys, public_of = parties
    hk = HashKey.originate(Secret.from_text("s"), keys["A"], "A")
    other = Secret.from_text("other").hashlock
    assert not hk.verify(reg, public_of, other)


def test_hashkey_payload_binds_lock(parties):
    """A chain signed for one lock cannot authenticate another secret."""
    reg, keys, public_of = parties
    s1, s2 = Secret.from_text("one"), Secret.from_text("two")
    hk = HashKey.originate(s1, keys["A"], "A")
    spliced = HashKey(s2, hk.chain)
    assert not spliced.verify(reg, public_of, s2.hashlock)


def test_hashkey_extension_follows_figure3_paths(parties):
    """On Figure 3a, k_A reaches (A,B) with paths (B,A) or (B,C,A)."""
    reg, keys, public_of = parties
    g = figure3_graph()
    secret = Secret.from_text("s")
    base = HashKey.originate(secret, keys["A"], "A")
    via_ba = base.extend(keys["B"], "B")
    assert via_ba.path == ("B", "A")
    assert via_ba.verify(reg, public_of, secret.hashlock, arcs=g.arc_set)
    via_bca = base.extend(keys["C"], "C").extend(keys["B"], "B")
    assert via_bca.path == ("B", "C", "A")
    assert via_bca.verify(reg, public_of, secret.hashlock, arcs=g.arc_set)


def test_hashkey_non_arc_path_rejected(parties):
    """(C,B) is not an arc of Figure 3a, so the path (B,...) via C->B fails."""
    reg, keys, public_of = parties
    g = figure3_graph()
    secret = Secret.from_text("s")
    # C extends from the origination directly: path (C, A) needs arc (C, A) — ok;
    # then B extending gives (B, C, A) needing (B, C) — ok; but A->C is absent,
    # so the path (C, A)... construct an invalid hop: B then C gives (C, B, A)
    bad = HashKey.originate(secret, keys["A"], "A").extend(keys["B"], "B").extend(keys["C"], "C")
    assert bad.path == ("C", "B", "A")
    assert not bad.verify(reg, public_of, secret.hashlock, arcs=g.arc_set)
    # without arc constraints the same chain is accepted (auction mode)
    assert bad.verify(reg, public_of, secret.hashlock, arcs=None)


def test_hashkey_cyclic_path_rejected(parties):
    reg, keys, public_of = parties
    secret = Secret.from_text("s")
    hk = (
        HashKey.originate(secret, keys["A"], "A")
        .extend(keys["B"], "B")
        .extend(keys["A"], "A")
    )
    assert not hk.verify(reg, public_of, secret.hashlock)


def test_require_valid_hashkey_raises(parties):
    reg, keys, public_of = parties
    secret = Secret.from_text("s")
    hk = HashKey.originate(secret, keys["A"], "A")
    require_valid_hashkey(hk, reg, public_of, secret.hashlock)
    with pytest.raises(CryptoError):
        require_valid_hashkey(hk, reg, public_of, Secret.from_text("z").hashlock)
