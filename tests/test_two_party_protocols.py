"""Integration tests: base (§5.1) and hedged (§5.2) two-party swaps."""

import pytest

from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import compliant_payoff_acceptable, extract_two_party_outcome
from repro.parties.strategies import halt_at, skip_methods
from repro.protocols.base_two_party import BaseTwoPartySwap, TwoPartySpec
from repro.protocols.instance import execute

SPEC = HedgedTwoPartySpec(premium_a=2, premium_b=1)


def run_base(deviations=None):
    instance = BaseTwoPartySwap().build()
    result = execute(instance, deviations or {})
    return instance, result, extract_two_party_outcome(instance, result)


def run_hedged(deviations=None):
    instance = HedgedTwoPartySwap(SPEC).build()
    result = execute(instance, deviations or {})
    return instance, result, extract_two_party_outcome(instance, result)


# ----------------------------------------------------------------------
# base protocol
# ----------------------------------------------------------------------
def test_base_compliant_swaps():
    _, result, out = run_base()
    assert out.swapped
    assert not result.reverted()


def test_base_compliant_event_order():
    _, result, _ = run_base()
    names = [e.name for e in result.events if e.name != "deployed"]
    assert names == ["escrowed", "escrowed", "redeemed", "redeemed"]


def test_base_bob_walks_locks_alice_three_delta():
    """§5.1: 'If Bob walks away at Step 2, Alice's asset is locked up for 3Δ'."""
    instance, _, out = run_base({"Bob": lambda a: halt_at(a, 0)})
    assert not out.swapped
    assert out.alice_kept_tokens  # refunded in the end
    htlc = instance.contract("apricot_htlc")
    # contract-enforced unavailability: escrowed h1, timelock h4 = 3Δ
    assert htlc.timelock - htlc.escrowed_at == 3


def test_base_alice_walks_locks_bob_one_delta():
    """§5.1: 'if Alice walks away at Step 3, Bob's asset is locked up for Δ'."""
    instance, _, out = run_base({"Alice": lambda a: halt_at(a, 2)})
    assert not out.swapped
    assert out.bob_kept_tokens
    htlc = instance.contract("banana_htlc")
    assert htlc.timelock - htlc.escrowed_at == 1


def test_base_deviator_pays_nothing():
    """§5.1: 'Bob pays no penalty for walking away.'"""
    _, _, out = run_base({"Bob": lambda a: halt_at(a, 1)})
    assert out.bob_premium_net == 0
    assert out.alice_premium_net == 0


# ----------------------------------------------------------------------
# hedged protocol — the Figure 1 timeline and §5.2 payoff matrix
# ----------------------------------------------------------------------
def test_hedged_compliant_swaps_and_refunds():
    _, result, out = run_hedged()
    assert out.swapped
    assert out.alice_premium_net == 0 and out.bob_premium_net == 0
    assert not result.reverted()


def test_hedged_compliant_trace_heights():
    """The §5.2 timeline: premiums at 1, 2; escrows at 3, 4; redeems at 5, 6."""
    _, result, _ = run_hedged()
    heights = {
        (e.name, e.chain): e.height for e in result.events if e.name != "deployed"
    }
    assert heights[("premium_deposited", "banana")] == 1
    assert heights[("premium_deposited", "apricot")] == 2
    assert heights[("principal_escrowed", "apricot")] == 3
    assert heights[("principal_escrowed", "banana")] == 4
    assert heights[("redeemed", "banana")] == 5
    assert heights[("redeemed", "apricot")] == 6


def test_hedged_bob_never_engages():
    """Bob deposits nothing: Alice's premium refunds, no compensation owed."""
    _, _, out = run_hedged({"Bob": lambda a: halt_at(a, 0)})
    assert not out.swapped
    assert out.alice_premium_net == 0
    assert out.alice_kept_tokens


def test_hedged_bob_walks_after_alice_escrows_pays_pb():
    """§5.2: 'If Bob is first to deviate after Alice escrows her principal,
    he will pay Alice p_b.'"""
    _, _, out = run_hedged({"Bob": lambda a: halt_at(a, 3)})
    assert not out.swapped
    assert out.alice_premium_net == SPEC.premium_b
    assert out.bob_premium_net == -SPEC.premium_b
    assert out.alice_kept_tokens and out.bob_kept_tokens


def test_hedged_alice_walks_after_bob_escrows_pays_pa_net():
    """§5.2: Alice pays p_a + p_b, receives p_b back: net p_a to Bob."""
    _, _, out = run_hedged({"Alice": lambda a: halt_at(a, 4)})
    assert not out.swapped
    assert out.alice_premium_net == -SPEC.premium_a
    assert out.bob_premium_net == SPEC.premium_a
    assert out.alice_kept_tokens and out.bob_kept_tokens


def test_hedged_bob_fails_to_redeem_after_secret_revealed():
    """Bob's only loss is self-inflicted; Alice still nets non-negative."""
    _, _, out = run_hedged({"Bob": lambda a: halt_at(a, 5)})
    assert out.alice_got_tokens  # she redeemed on the banana chain
    assert out.alice_premium_net >= 0


def test_hedged_alice_skips_premium_only():
    instance, _, out = run_hedged(
        {"Alice": lambda a: skip_methods(a, "deposit_premium")}
    )
    assert not out.swapped
    # compliant Bob never engages, so nothing is at risk anywhere
    assert out.bob_premium_net == 0
    banana = instance.contract("banana_escrow")
    assert banana.premium_state == "absent"


def test_hedged_definition1_for_all_halt_deviations():
    """Definition 1 sweep: every single-party halt keeps the compliant
    party's payoff acceptable."""
    for deviator in ("Alice", "Bob"):
        compliant = "Bob" if deviator == "Alice" else "Alice"
        for rnd in range(8):
            _, _, out = run_hedged({deviator: lambda a, r=rnd: halt_at(a, r)})
            assert compliant_payoff_acceptable(out, compliant, SPEC), (
                f"{deviator} halting at {rnd} hurt {compliant}: "
                f"{out.alice_premium_net}/{out.bob_premium_net}"
            )


def test_hedged_premium_lockup_bounds():
    """§5.2: Alice risks p_a+p_b until t_b,e; Bob risks p_b until t_a,e."""
    instance, _, _ = run_hedged({"Bob": lambda a: halt_at(a, 0)})
    banana = instance.contract("banana_escrow")
    # premium deposited h1, refunded at h5 (> t_b,e = 4)
    assert banana.premium_lockup == 4


def test_spec_premium_composition():
    assert SPEC.alice_premium == SPEC.premium_a + SPEC.premium_b
    assert SPEC.bob_premium == SPEC.premium_b


def test_custom_amounts_flow_through():
    spec = HedgedTwoPartySpec(amount_a=7, amount_b=9, premium_a=3, premium_b=2)
    instance = HedgedTwoPartySwap(spec).build()
    result = execute(instance)
    out = extract_two_party_outcome(instance, result)
    assert out.swapped
    apricot = instance.contract("apricot_escrow")
    assert apricot.principal_amount == 7
    assert apricot.premium_amount == 2
