"""Tests for the world, runner, payoff accounting, and deviation wrappers."""

import pytest

from repro.chain.block import Transaction
from repro.errors import ChainError, ProtocolError
from repro.parties.base import Actor
from repro.parties.strategies import Deviant, SkipRule, halt_at, skip_methods
from repro.protocols.instance import ProtocolInstance, execute
from repro.sim.payoff import PayoffSheet, Valuation
from repro.sim.runner import SyncRunner
from repro.sim.world import World


class Spender(Actor):
    """Sends 1 native coin to a sink every round."""

    def __init__(self, name, keypair, chain_name):
        super().__init__(name, keypair)
        self.chain_name = chain_name

    def on_round(self, rnd, view):
        return [self.tx(self.chain_name, "sink-1", "receive")]


# ----------------------------------------------------------------------
# world
# ----------------------------------------------------------------------
def test_world_lockstep(world):
    assert world.height == 0
    for chain in world.chains.values():
        chain.advance()
    assert world.height == 1


def test_world_detects_out_of_lockstep(world):
    world.chain("apricot").advance()
    with pytest.raises(ChainError):
        _ = world.height


def test_world_unknown_chain(world):
    with pytest.raises(ChainError):
        world.chain("mango")


def test_register_party_publishes_key(world):
    keys = world.register_party("Alice")
    assert world.public_of["Alice"] == keys.public
    assert world.registry.knows(keys.public)


def test_fund_mints(world):
    world.fund("apricot", "Alice", "apricot-token", 5)
    chain = world.chain("apricot")
    assert chain.ledger.balance(chain.asset("apricot-token"), "Alice") == 5


# ----------------------------------------------------------------------
# payoff accounting
# ----------------------------------------------------------------------
def test_payoff_sheet_deltas(world):
    world.fund("apricot", "Alice", "native", 10)
    sheet = PayoffSheet(world, ["Alice", "Bob"])
    chain = world.chain("apricot")
    chain.ledger.transfer(chain.native, "Alice", "Bob", 4)
    sheet.finish()
    assert sheet.premium_net("Alice") == -4
    assert sheet.premium_net("Bob") == 4


def test_payoff_separates_principal_and_premium(world):
    world.fund("apricot", "Alice", "native", 10)
    world.fund("apricot", "Alice", "apricot-token", 3)
    sheet = PayoffSheet(world, ["Alice"])
    chain = world.chain("apricot")
    chain.ledger.transfer(chain.asset("apricot-token"), "Alice", "Bob", 3)
    sheet.finish()
    assert sheet.premium_net("Alice") == 0
    assert sheet.principal_delta("Alice") == {chain.asset("apricot-token"): -3}


def test_valuation_defaults():
    val = Valuation()
    from repro.chain.assets import Asset, native_asset

    assert val.value_of(native_asset("x")) == 1.0
    assert val.value_of(Asset("x", "token")) == 0.0
    val.set(Asset("x", "token"), 2.5)
    assert val.value_of(Asset("x", "token")) == 2.5


def test_total_value_weighs_assets(world):
    from repro.chain.assets import Asset

    world.fund("apricot", "Alice", "apricot-token", 2)
    sheet = PayoffSheet(world, ["Alice", "Bob"])
    chain = world.chain("apricot")
    token = chain.asset("apricot-token")
    chain.ledger.transfer(token, "Alice", "Bob", 2)
    sheet.finish()
    valuation = Valuation().set(token, 10.0)
    assert sheet.total_value("Bob", valuation) == 20.0


def test_payoff_table_shape(world):
    sheet = PayoffSheet(world, ["Alice"])
    sheet.finish()
    assert sheet.table() == {"Alice": {"premium_net": 0, "principals": {}}}


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def test_runner_runs_rounds_and_collects_txs(world):
    world.fund("apricot", "S", "native", 100)
    keys = world.register_party("S")

    class Once(Actor):
        def on_round(self, rnd, view):
            if rnd == 0:
                return [self.tx("apricot", "nowhere-1", "noop")]
            return []

    runner = SyncRunner(world, [Once("S", keys)])
    result = runner.run(3)
    assert world.height == 3
    assert len(result.transactions) == 1
    assert result.transactions[0].receipt.status == "reverted"  # no contract


def test_runner_rejects_duplicate_names(world):
    keys = world.register_party("S")
    with pytest.raises(ChainError):
        SyncRunner(world, [Actor("S", keys), Actor("S", keys)])


# ----------------------------------------------------------------------
# deviation wrappers
# ----------------------------------------------------------------------
class Chatty(Actor):
    def on_round(self, rnd, view):
        return [
            self.tx("apricot", "c-1", "ping"),
            self.tx("banana", "c-1", "pong"),
        ]


def test_halt_at_silences_from_round(world):
    keys = world.register_party("X")
    deviant = halt_at(Chatty("X", keys), 2)
    view = world.view()
    assert len(deviant.on_round(0, view)) == 2
    assert len(deviant.on_round(1, view)) == 2
    assert deviant.on_round(2, view) == []
    assert deviant.on_round(5, view) == []


def test_skip_methods_filters(world):
    keys = world.register_party("X")
    deviant = skip_methods(Chatty("X", keys), "ping")
    txs = deviant.on_round(0, world.view())
    assert [t.method for t in txs] == ["pong"]


def test_skip_rule_by_chain_and_contract():
    rule = SkipRule(chain="apricot", contract="c-1")
    tx = Transaction(chain="apricot", sender="X", contract="c-1", method="m")
    assert rule.matches(tx)
    assert not rule.matches(
        Transaction(chain="banana", sender="X", contract="c-1", method="m")
    )


def test_deviant_extra_injection(world):
    keys = world.register_party("X")
    extra_tx = Transaction(chain="apricot", sender="X", contract="c-9", method="sneak")
    deviant = Deviant(Chatty("X", keys), halt_round=0, extra={1: [extra_tx]})
    assert deviant.on_round(0, world.view()) == []
    assert deviant.on_round(1, world.view()) == [extra_tx]


def test_deviant_describe():
    keys_world = World(["apricot"])
    keys = keys_world.register_party("X")
    d = Deviant(Chatty("X", keys), halt_round=3, skip_rules=(SkipRule(method="ping"),))
    text = d.describe()
    assert "halts at round 3" in text and "ping" in text


def test_execute_rejects_unknown_deviator(world):
    keys = world.register_party("X")
    instance = ProtocolInstance(world=world, actors={"X": Actor("X", keys)}, horizon=1)
    with pytest.raises(ProtocolError):
        execute(instance, {"Y": lambda a: a})
