"""Tests for the determinism linter (repro.lint).

Coverage per the subsystem's contract:

- every rule family: a flagging case, a suppressed case, and a clean
  case (both as inline snippets and via the committed seeded fixtures),
- the suppression and baseline machinery (round-trip, multiset matching,
  stale-entry reporting, justification requirement),
- the CLI: exit codes, --select, --write-baseline, --list-rules,
- the whole-tree smoke: ``src/repro`` is clean modulo the committed
  baseline — the same assertion CI's ``lint`` job gates on.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Baseline, LintError, all_rules, lint_paths, rule_codes
from repro.lint.__main__ import main as lint_main
from repro.lint.core import SourceFile

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint_snippet(tmp_path: Path, source: str, select: list[str] | None = None):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    rules = all_rules(select) if select else None
    return lint_paths([path], rules=rules)


def codes_of(result) -> list[str]:
    return [finding.code for finding in result.findings]


# ----------------------------------------------------------------------
# DET001 / DET002
# ----------------------------------------------------------------------
class TestDeterminismRules:
    def test_flags_wall_clock_and_entropy(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import time, os, uuid\n"
            "def stamp(d):\n"
            "    d['t'] = time.time()\n"
            "    d['u'] = uuid.uuid4()\n"
            "    d['n'] = os.urandom(4)\n"
            "    d['i'] = id(d)\n",
        )
        assert codes_of(result) == ["DET001"] * 4

    def test_resolves_import_aliases(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from time import time as clock\n"
            "def stamp():\n"
            "    return clock()\n",
        )
        assert codes_of(result) == ["DET001"]
        assert "time.time" in result.findings[0].message

    def test_datetime_now_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return datetime.now()\n",
        )
        assert codes_of(result) == ["DET001"]

    def test_unseeded_rng_flagged_seeded_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import random\n"
            "import numpy as np\n"
            "def draw():\n"
            "    a = random.random()\n"          # DET002
            "    b = random.Random()\n"          # DET002
            "    c = np.random.default_rng()\n"  # DET002
            "    d = random.Random(7)\n"         # clean: seeded
            "    e = np.random.default_rng(7)\n" # clean: seeded
            "    return a, b, c, d, e\n",
        )
        assert codes_of(result) == ["DET002"] * 3

    def test_perf_counter_is_blessed(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n",
        )
        assert result.ok

    def test_inline_suppression_counts(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # lint: disable=DET001\n",
        )
        assert result.ok
        assert result.suppressed == 1

    def test_suppression_in_string_is_not_honored(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import time\n"
            "def stamp():\n"
            "    return time.time(), '# lint: disable=DET001'\n",
        )
        assert codes_of(result) == ["DET001"]


# ----------------------------------------------------------------------
# DET003
# ----------------------------------------------------------------------
class TestTelemetryInDigestRule:
    def test_snapshot_readback_in_digest_scope(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "def run_digest(tracer, payload):\n"
            "    h = sha256(payload)\n"
            "    h.update(str(tracer.metrics.snapshot()).encode())\n"
            "    return h.hexdigest()\n",
        )
        assert codes_of(result) == ["DET003"]

    def test_obs_call_in_payload_scope(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import json\n"
            "from repro.obs import phase_fragments\n"
            "def bench_payload(snap):\n"
            "    return json.dumps(phase_fragments(snap))\n",
        )
        assert codes_of(result) == ["DET003"]

    def test_write_only_span_is_blessed(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "from repro.obs import maybe_span\n"
            "def spec_digest(tracer, payload):\n"
            "    with maybe_span(tracer, 'digest'):\n"
            "        return sha256(payload).hexdigest()\n",
        )
        assert result.ok

    def test_readback_outside_digest_scope_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def render(tracer):\n"
            "    snap = tracer.metrics.snapshot()\n"
            "    return len(snap.counters)\n",
        )
        assert result.ok

    def test_simulation_snapshot_is_not_telemetry(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "def state_digest(chain):\n"
            "    h = sha256()\n"
            "    for k, v in sorted(chain.ledger.snapshot().items()):\n"
            "        h.update(f'{k}={v}'.encode())\n"
            "    return h.hexdigest()\n",
        )
        assert result.ok


# ----------------------------------------------------------------------
# ORD001
# ----------------------------------------------------------------------
class TestOrderingRule:
    def test_unsorted_walk_in_digest_function(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "def tree_digest(root):\n"
            "    h = sha256()\n"
            "    for p in root.rglob('*.py'):\n"
            "        h.update(p.read_bytes())\n"
            "    return h.hexdigest()\n",
        )
        # The heuristic flags the walk; the flow pass independently
        # confirms the tainted bytes reach the hash sink.
        assert sorted(codes_of(result)) == ["FLOW002", "ORD001"]

    def test_sorted_walk_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "def tree_digest(root):\n"
            "    h = sha256()\n"
            "    for p in sorted(root.rglob('*.py')):\n"
            "        h.update(p.read_bytes())\n"
            "    return h.hexdigest()\n",
        )
        assert result.ok

    def test_set_typed_param_iteration(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import json\n"
            "def to_json(members: set) -> str:\n"
            "    return json.dumps([m for m in members])\n",
        )
        assert codes_of(result) == ["ORD001"]

    def test_set_literal_join_in_payload(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def payload(parties):\n"
            "    return ','.join({p for p in parties})\n",
        )
        assert codes_of(result) == ["ORD001"]

    def test_order_free_consumers_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "def count_digest(members: set) -> str:\n"
            "    total = sum(len(m) for m in members)\n"
            "    biggest = max({len(m) for m in members})\n"
            "    return sha256(f'{total}|{biggest}'.encode()).hexdigest()\n",
        )
        assert result.ok

    def test_set_iteration_outside_digest_scope_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def collect(members: set) -> list:\n"
            "    return [m for m in members]\n",
        )
        assert result.ok

    def test_real_regression_shape_code_version(self, tmp_path):
        # The exact shape of cache.code_version's bug class: a source
        # walk feeding a digest, missing its sorted().
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "from pathlib import Path\n"
            "def code_version():\n"
            "    h = sha256()\n"
            "    for p in Path('src').rglob('*.py'):\n"
            "        h.update(p.read_bytes())\n"
            "    return h.hexdigest()\n",
        )
        assert sorted(codes_of(result)) == ["FLOW002", "ORD001"]


# ----------------------------------------------------------------------
# CANON001
# ----------------------------------------------------------------------
class TestCanonFloatRule:
    def test_lossy_fstring_in_digest_code(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "def cell_digest(pi):\n"
            "    return sha256(f'{pi:g}'.encode()).hexdigest()\n",
        )
        assert sorted(codes_of(result)) == ["CANON001", "FLOW003"]

    def test_format_call_and_printf_in_label_code(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def axis_label(pi, shock):\n"
            "    return format(pi, 'g') + '%g' % shock\n",
        )
        # Both lossy spellings, each confirmed end-to-end at the label.
        assert sorted(codes_of(result)) == [
            "CANON001",
            "CANON001",
            "FLOW003",
            "FLOW003",
        ]

    def test_canonicalized_value_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from hashlib import sha256\n"
            "from repro.campaign.canon import canon_float, fmt_fraction\n"
            "def cell_digest(pi, shock):\n"
            "    line = f'{fmt_fraction(pi)}|{canon_float(shock)!r}'\n"
            "    return sha256(line.encode()).hexdigest()\n",
        )
        assert result.ok

    def test_presentation_scope_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def progress(pi):\n"
            "    return f'refining pi={pi:g}'\n",
        )
        assert result.ok


# ----------------------------------------------------------------------
# POOL001
# ----------------------------------------------------------------------
class TestPoolRule:
    def test_lambda_in_matrix_spec(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from repro.campaign.pool import MatrixSpec\n"
            "def build():\n"
            "    return MatrixSpec(factory='f', args=(lambda: 1,), kwargs=())\n",
        )
        assert codes_of(result) == ["POOL001"]

    def test_closure_reference_into_run_indices(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def dispatch(pool, spec, digest):\n"
            "    def helper():\n"
            "        return 1\n"
            "    return pool.run_indices(spec, digest, helper)\n",
        )
        assert codes_of(result) == ["POOL001"]

    def test_nested_factory_registration(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from repro.campaign.pool import register_matrix_factory\n"
            "def make(premium):\n"
            "    @register_matrix_factory('bad')\n"
            "    def factory():\n"
            "        return premium\n"
            "    return factory\n",
        )
        assert codes_of(result) == ["POOL001"]

    def test_primitive_args_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from repro.campaign.pool import MatrixSpec\n"
            "def build():\n"
            "    return MatrixSpec(factory='f', args=(3, 'ring'), kwargs=())\n",
        )
        assert result.ok

    def test_module_level_factory_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from repro.campaign.pool import register_matrix_factory\n"
            "@register_matrix_factory('good')\n"
            "def factory(n: int):\n"
            "    return n\n",
        )
        assert result.ok


# ----------------------------------------------------------------------
# DIG001
# ----------------------------------------------------------------------
class TestDigestCoverageRule:
    def test_field_missing_from_digest(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass\n"
            "from hashlib import sha256\n"
            "@dataclass\n"
            "class Spec:\n"
            "    kind: str\n"
            "    tol: float\n"
            "    def digest(self):\n"
            "        return sha256(self.kind.encode()).hexdigest()\n",
        )
        assert codes_of(result) == ["DIG001"]
        assert "Spec.tol" in result.findings[0].message

    def test_field_missing_from_to_json(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import json\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Report:\n"
            "    scenarios: int\n"
            "    violations: list\n"
            "    def to_json(self):\n"
            "        return json.dumps({'scenarios': self.scenarios})\n",
        )
        assert codes_of(result) == ["DIG001"]
        assert "Report.violations" in result.findings[0].message

    def test_helper_method_fixpoint(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass\n"
            "from hashlib import sha256\n"
            "@dataclass\n"
            "class Spec:\n"
            "    kind: str\n"
            "    tol: float\n"
            "    def digest(self):\n"
            "        return sha256(self._payload().encode()).hexdigest()\n"
            "    def _payload(self):\n"
            "        return f'{self.kind}|{self.tol!r}'\n",
        )
        assert result.ok

    def test_annotation_bound_module_payload(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Result:\n"
            "    index: int\n"
            "    label: str\n"
            "def result_payload(result: Result) -> dict:\n"
            "    return {'index': result.index, 'label': result.label}\n",
        )
        assert result.ok

    def test_allowlist_spares_experiment_spec_backend(self, tmp_path):
        # The canonical allowlist entries: digest() deliberately ignores
        # placement fields.  The real ExperimentSpec is linted clean in
        # the whole-tree smoke; here prove the allowlist is what does it.
        from repro.lint.rules.digestcov import DIGEST_EXCLUSIONS

        for key in ("ExperimentSpec.backend", "ExperimentSpec.workers",
                    "ExperimentSpec.expect"):
            assert key in DIGEST_EXCLUSIONS
            assert DIGEST_EXCLUSIONS[key]  # justification is non-empty

    def test_plain_dataclass_without_consumers_skipped(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Point:\n"
            "    x: int\n"
            "    y: int\n",
        )
        assert result.ok


# ----------------------------------------------------------------------
# DIG002
# ----------------------------------------------------------------------
class TestStaleExclusionRule:
    SPEC = (
        "from dataclasses import dataclass\n"
        "from hashlib import sha256\n"
        "@dataclass\n"
        "class ExperimentSpec:\n"
        "    kind: str\n"
        "    backend: str\n"
        "    def digest(self):\n"
        "        return sha256(self.kind.encode()).hexdigest()\n"
    )

    def test_stale_entry_flagged(self, tmp_path, monkeypatch):
        from repro.lint.rules import digestcov

        monkeypatch.setattr(
            digestcov,
            "DIGEST_EXCLUSIONS",
            {"ExperimentSpec.vanished": "justified a field that is gone"},
        )
        result = lint_snippet(tmp_path, self.SPEC, select=["DIG002"])
        assert codes_of(result) == ["DIG002"]
        assert "ExperimentSpec.vanished" in result.findings[0].message

    def test_live_entry_clean(self, tmp_path, monkeypatch):
        from repro.lint.rules import digestcov

        monkeypatch.setattr(
            digestcov,
            "DIGEST_EXCLUSIONS",
            {"ExperimentSpec.backend": "placement, not content"},
        )
        result = lint_snippet(tmp_path, self.SPEC, select=["DIG002"])
        assert result.ok

    def test_absent_class_skipped(self, tmp_path, monkeypatch):
        # Linting a directory that never declares the class (e.g. the
        # fixture tree) must not indict the shipped allowlist.
        from repro.lint.rules import digestcov

        monkeypatch.setattr(
            digestcov,
            "DIGEST_EXCLUSIONS",
            {"SomeOtherClass.field": "irrelevant here"},
        )
        result = lint_snippet(tmp_path, self.SPEC, select=["DIG002"])
        assert result.ok

    def test_shipped_allowlist_is_live(self):
        # The committed table itself must pass its own staleness check
        # against the shipped tree (also covered by the whole-tree
        # smoke, but pinned here so a rename fails with a clear name).
        result = lint_paths(
            [REPO_ROOT / "src" / "repro"], rules=all_rules(["DIG002"])
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)


# ----------------------------------------------------------------------
# committed seeded fixtures (what CI's lint job runs)
# ----------------------------------------------------------------------
class TestSeededFixtures:
    def test_every_family_fires(self):
        result = lint_paths([FIXTURES])
        found = set(codes_of(result))
        assert found == {
            "DET001",
            "DET002",
            "DET003",
            "ORD001",
            "CANON001",
            "POOL001",
            "DIG001",
            "FLOW001",
            "FLOW002",
            "FLOW003",
        }

    def test_fixture_suppressions_honored(self):
        result = lint_paths([FIXTURES])
        assert result.suppressed >= 5  # one suppressed case per family

    def test_seeded_quote_codes(self):
        """The quote-layer fixture: telemetry smuggled into a payload
        (DIG001) and a tier set hashed in iteration order (ORD001, with
        the flow pass confirming the set-to-hash path as FLOW002)."""
        result = lint_paths([FIXTURES / "seeded_quote.py"])
        assert sorted(codes_of(result)) == ["DIG001", "FLOW002", "ORD001"]

    def test_cli_exits_nonzero_on_fixtures(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(FIXTURES), "--no-baseline"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "DET001" in proc.stdout


# ----------------------------------------------------------------------
# suppression / baseline machinery
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_and_matching(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
        )
        assert len(result.findings) == 1
        baseline = Baseline.from_findings(result.findings, "known debt")
        baseline_path = tmp_path / "baseline.json"
        baseline.save(baseline_path)

        reloaded = Baseline.load(baseline_path)
        again = lint_paths([tmp_path / "snippet.py"], baseline=reloaded)
        assert again.ok
        assert again.baselined == 1
        assert not again.stale_baseline

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("import time\ndef stamp():\n    return time.time()\n")
        result = lint_paths([path])
        baseline = Baseline.from_findings(result.findings, "to be fixed")

        path.write_text("def stamp():\n    return 0\n")  # debt paid
        again = lint_paths([path], baseline=baseline)
        assert again.ok
        assert len(again.stale_baseline) == 1

    def test_multiset_semantics(self, tmp_path):
        # Two identical findings on identical lines: a baseline holding
        # one acknowledges only one.
        path = tmp_path / "snippet.py"
        path.write_text(
            "import time\n"
            "def a():\n"
            "    return time.time()\n"
            "def b():\n"
            "    return time.time()\n"
        )
        result = lint_paths([path])
        assert len(result.findings) == 2
        baseline = Baseline.from_findings(result.findings[:1], "one only")
        again = lint_paths([path], baseline=baseline)
        assert len(again.findings) == 1
        assert again.baselined == 1

    def test_line_number_churn_does_not_invalidate(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text("import time\ndef stamp():\n    return time.time()\n")
        baseline = Baseline.from_findings(lint_paths([path]).findings, "debt")

        # Unrelated code added above: the finding moves lines but keeps
        # its fingerprint (code, path, line text).
        path.write_text(
            "import time\n\n\ndef other():\n    return 1\n\n\n"
            "def stamp():\n    return time.time()\n"
        )
        again = lint_paths([path], baseline=baseline)
        assert again.ok and again.baselined == 1

    def test_justification_required(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "code": "DET001", "path": "x.py",
                "line_text": "t = time.time()", "count": 1,
                "justification": "",
            }],
        }))
        with pytest.raises(LintError, match="justification"):
            Baseline.load(baseline_path)

    def test_version_checked(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(LintError, match="version"):
            Baseline.load(baseline_path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_exit_two_on_bad_rule_code(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "NOPE99"]) == 2

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/here", "--no-baseline"]) == 2

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        assert lint_main([str(tmp_path), "--select", "ORD001"]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DET001",
            "DET002",
            "DET003",
            "ORD001",
            "CANON001",
            "POOL001",
            "DIG001",
            "DIG002",
            "FLOW001",
            "FLOW002",
            "FLOW003",
        ):
            assert code in out

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        assert lint_main(["bad.py", "--write-baseline"]) == 0
        assert Path("lint-baseline.json").exists()
        # The default baseline is picked up automatically.
        assert lint_main(["bad.py"]) == 0

    def test_syntax_error_reported_not_crashed(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "LINT901" in capsys.readouterr().out

    def test_syntax_error_finding_is_deterministic(self, tmp_path, capsys):
        # The failure path is part of the contract: same broken file,
        # same finding text, across runs (CI diffs on it).
        (tmp_path / "broken.py").write_text("def f(:\n")
        outs = []
        for _ in range(2):
            assert lint_main([str(tmp_path), "--no-baseline"]) == 1
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_format_json_machine_readable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--format", "json"])
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        [finding] = payload["findings"]
        assert finding["code"] == "DET001"
        assert finding["line"] == 3
        assert finding["path"].endswith("bad.py")
        assert isinstance(finding["fingerprint"], list)
        # Non-flow findings carry an empty chain and a null source.
        assert finding["chain"] == []
        assert finding["source"] is None

    def test_format_json_carries_flow_chain(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import hashlib, time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n"
            "def run_digest():\n"
            "    return hashlib.sha256(repr(stamp()).encode()).hexdigest()\n"
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--format", "json"])
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        [finding] = payload["findings"]
        assert finding["code"] == "FLOW001"
        assert finding["chain"] == ["mod.stamp", "mod.run_digest"]
        assert finding["source"]["line"] == 3

    def test_format_json_exit_zero_on_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--format", "json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["findings"] == []


# ----------------------------------------------------------------------
# suppression placement on hard statement shapes
# ----------------------------------------------------------------------
class TestSuppressionPlacement:
    def test_multi_line_statement_any_line_works(self, tmp_path):
        # The flagged call opens on one line, the disable marker sits on
        # the closing line — the statement's span carries it.
        result = lint_snippet(
            tmp_path,
            "import time\n"
            "def stamp():\n"
            "    return time.time(\n"
            "    )  # lint: disable=DET001\n",
        )
        assert result.ok
        assert result.suppressed == 1

    def test_decorated_statement_marker_on_def_line(self, tmp_path):
        # POOL001 anchors at the decorator; the marker on the def line
        # still falls inside the decorated statement's header span.
        result = lint_snippet(
            tmp_path,
            "from repro.campaign.pool import register_matrix_factory\n"
            "def make(premium):\n"
            "    @register_matrix_factory('bad')\n"
            "    def factory():  # lint: disable=POOL001\n"
            "        return premium\n"
            "    return factory\n",
        )
        assert result.ok
        assert result.suppressed == 1

    def test_marker_in_body_does_not_mute_header_finding(self, tmp_path):
        # A disable inside the function *body* must not reach a finding
        # anchored on the decorator/header.
        result = lint_snippet(
            tmp_path,
            "from repro.campaign.pool import register_matrix_factory\n"
            "def make(premium):\n"
            "    @register_matrix_factory('bad')\n"
            "    def factory():\n"
            "        return premium  # lint: disable=POOL001\n"
            "    return factory\n",
        )
        assert codes_of(result) == ["POOL001"]


# ----------------------------------------------------------------------
# whole-tree smoke: the CI gate's exact assertion
# ----------------------------------------------------------------------
class TestWholeTree:
    def test_src_repro_clean_modulo_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths([REPO_ROOT / "src" / "repro"], baseline=baseline)
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert not result.stale_baseline

    def test_finding_order_deterministic(self):
        first = lint_paths([FIXTURES])
        second = lint_paths([FIXTURES])
        assert [f.render() for f in first.findings] == [
            f.render() for f in second.findings
        ]

    def test_rule_registry_complete(self):
        assert rule_codes() == (
            "AUDIT001",
            "CANON001",
            "DET001",
            "DET002",
            "DET003",
            "DIG001",
            "DIG002",
            "FLOW001",
            "FLOW002",
            "FLOW003",
            "ORD001",
            "POOL001",
        )

    def test_source_file_parses_own_package(self):
        # The linter lints itself: parsing every module of repro.lint
        # through SourceFile exercises alias collection and parent links.
        for path in sorted((REPO_ROOT / "src" / "repro" / "lint").rglob("*.py")):
            src = SourceFile.load(path, REPO_ROOT)
            assert src.tree is not None
