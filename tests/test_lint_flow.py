"""Tests for the interprocedural flow pass (repro.lint.flow).

Coverage per the subsystem's contract:

- the core value proposition: the seeded ``flow_helpers.py`` /
  ``seeded_flow.py`` fixture pair is *provably clean* under every
  per-file heuristic rule, while the flow pass flags all three flows
  (FLOW001/002/003) with full source→sink call chains,
- transfer-function semantics on minimal two-function programs:
  propagation through calls, neutralizers (``sorted`` strips order
  taint), param→sink summaries, the digest-covered-field hop,
- determinism: the ``--graph json`` export is byte-identical across
  runs, finding order is stable,
- the ``--audit`` crosscheck: heuristic findings confirmed by a flow
  hit stay silent; the deliberate unconfirmed case gains AUDIT001,
- the analysis cache: linting the same sources twice reuses one
  analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import all_rules, lint_paths
from repro.lint.__main__ import main as lint_main
from repro.lint.core import SourceFile
from repro.lint.flow import FlowAnalysis, Program, export_graph
from repro.lint.flow.rules import analyze

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
FLOW_PAIR = [FIXTURES / "flow_helpers.py", FIXTURES / "seeded_flow.py"]

HEURISTIC_CODES = [
    "CANON001",
    "DET001",
    "DET002",
    "DET003",
    "DIG001",
    "ORD001",
    "POOL001",
]


def lint_snippets(tmp_path: Path, select=None, **modules: str):
    """Write ``name -> source`` modules into one directory and lint it."""
    for name, source in modules.items():
        (tmp_path / f"{name}.py").write_text(source)
    rules = all_rules(select) if select else None
    return lint_paths([tmp_path], rules=rules)


def codes_of(result) -> list[str]:
    return [finding.code for finding in result.findings]


# ----------------------------------------------------------------------
# the seeded fixture pair: heuristics provably miss, flow catches
# ----------------------------------------------------------------------
class TestSeededFlowFixtures:
    def test_heuristic_rules_provably_silent(self):
        result = lint_paths(FLOW_PAIR, rules=all_rules(HEURISTIC_CODES))
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.suppressed == 0  # silent, not suppressed-silent

    def test_flow_rules_fire(self):
        result = lint_paths(FLOW_PAIR)
        assert sorted(codes_of(result)) == [
            "FLOW001",
            "FLOW002",
            "FLOW002",
            "FLOW003",
        ]

    def test_nondet_chain_spans_two_hops(self):
        result = lint_paths(FLOW_PAIR)
        [hit] = [f for f in result.findings if f.code == "FLOW001"]
        assert hit.chain == (
            "flow_helpers.wall_stamp",
            "flow_helpers.jittered_stamp",
            "seeded_flow.digest_batch",
        )
        # The source anchor points at the hazard in the *helper* module,
        # the finding itself at the sink in seeded_flow.py.
        assert hit.source_ref is not None
        assert hit.source_ref[0].endswith("flow_helpers.py")
        assert hit.path.endswith("seeded_flow.py")
        assert "time.perf_counter" in hit.message

    def test_field_hop_chain_names_the_dataclass_field(self):
        result = lint_paths(FLOW_PAIR)
        chains = [f.chain for f in result.findings if f.code == "FLOW002"]
        # One FLOW002 lands on the covered-field write, the other follows
        # the stored taint into the field's digest() consumer.
        assert any("field MemberReport.members" in chain for chain in chains)

    def test_lossy_chain_reaches_label_sink(self):
        result = lint_paths(FLOW_PAIR)
        [hit] = [f for f in result.findings if f.code == "FLOW003"]
        assert hit.chain[0] == "flow_helpers.pct_text"
        assert "label output" in hit.message


# ----------------------------------------------------------------------
# transfer-function semantics on minimal programs
# ----------------------------------------------------------------------
class TestFlowSemantics:
    def test_nondet_return_through_one_call(self, tmp_path):
        result = lint_snippets(
            tmp_path,
            mod=(
                "import hashlib, time\n"
                "def stamp():\n"
                "    return time.perf_counter()\n"
                "def run_digest(payload):\n"
                "    h = hashlib.sha256(payload)\n"
                "    h.update(repr(stamp()).encode())\n"
                "    return h.hexdigest()\n"
            ),
        )
        assert codes_of(result) == ["FLOW001"]
        assert result.findings[0].chain == ("mod.stamp", "mod.run_digest")

    def test_sorted_neutralizes_order_taint(self, tmp_path):
        result = lint_snippets(
            tmp_path,
            mod=(
                "import hashlib\n"
                "def dedup(raw):\n"
                "    return sorted({r.strip() for r in raw})\n"
                "def run_digest(raw):\n"
                "    h = hashlib.sha256()\n"
                "    for item in dedup(raw):\n"
                "        h.update(item.encode())\n"
                "    return h.hexdigest()\n"
            ),
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_param_sink_summary_flags_the_caller_argument(self, tmp_path):
        # The hazard (a set comprehension) is in the *caller*; the sink
        # (hashing the parameter) is in the *callee*.  Neither function
        # is flaggable alone — the param-sink summary connects them.
        result = lint_snippets(
            tmp_path,
            mod=(
                "import hashlib\n"
                "def hash_items(items):\n"
                "    h = hashlib.sha256()\n"
                "    for item in items:\n"
                "        h.update(item.encode())\n"
                "    return h.hexdigest()\n"
                "def collect(raw):\n"
                "    return hash_items({r.strip() for r in raw})\n"
            ),
        )
        assert codes_of(result) == ["FLOW002"]
        assert "mod.hash_items" in result.findings[0].chain

    def test_cross_module_resolution(self, tmp_path):
        result = lint_snippets(
            tmp_path,
            helpers=(
                "import time\n"
                "def now():\n"
                "    return time.perf_counter()\n"
            ),
            sink=(
                "import hashlib\n"
                "from helpers import now\n"
                "def run_digest():\n"
                "    return hashlib.sha256(repr(now()).encode()).hexdigest()\n"
            ),
        )
        assert codes_of(result) == ["FLOW001"]
        assert result.findings[0].chain == ("helpers.now", "sink.run_digest")

    def test_json_dumps_sort_keys_is_a_sink(self, tmp_path):
        result = lint_snippets(
            tmp_path,
            mod=(
                "import json, time\n"
                "def payload():\n"
                "    return json.dumps(\n"
                "        {'t': time.perf_counter()}, sort_keys=True\n"
                "    )\n"
            ),
        )
        assert codes_of(result) == ["FLOW001"]

    def test_json_dumps_without_sort_keys_is_transport_not_sink(
        self, tmp_path
    ):
        # Plain json.dumps is serialization for transport; only the
        # canonical (sort_keys) form marks digest material.
        result = lint_snippets(
            tmp_path,
            mod=(
                "import json, time\n"
                "def to_json():\n"
                "    return json.dumps({'t': time.perf_counter()})\n"
            ),
        )
        assert result.ok

    def test_uncovered_field_is_not_a_sink(self, tmp_path):
        # Report.note is declared but never hashed by digest(): writing
        # tainted data into it must not fire FLOW — that is DIG001's job.
        result = lint_snippets(
            tmp_path,
            mod=(
                "import hashlib\n"
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Report:\n"
                "    name: str\n"
                "    note: str\n"
                "    def digest(self):\n"
                "        return hashlib.sha256(self.name.encode()).hexdigest()\n"
                "def build(raw):\n"
                "    return Report(name='r', note=','.join({r for r in raw}))\n"
            ),
            select=["FLOW001", "FLOW002", "FLOW003"],
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_inline_suppression_applies_to_flow_findings(self, tmp_path):
        result = lint_snippets(
            tmp_path,
            mod=(
                "import hashlib, time\n"
                "def stamp():\n"
                "    return time.perf_counter()\n"
                "def run_digest():\n"
                "    raw = repr(stamp()).encode()\n"
                "    return hashlib.sha256(raw).hexdigest()"
                "  # lint: disable=FLOW001\n"
            ),
        )
        assert result.ok
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# graph export determinism
# ----------------------------------------------------------------------
class TestGraphExport:
    def _analyze_fixtures(self):
        sources = [
            SourceFile.load(path, REPO_ROOT) for path in sorted(FLOW_PAIR)
        ]
        program = Program(sources)
        return program, FlowAnalysis(program)

    def test_json_export_byte_identical_across_runs(self):
        first = export_graph(*self._analyze_fixtures(), fmt="json")
        second = export_graph(*self._analyze_fixtures(), fmt="json")
        assert first == second

    def test_json_export_shape(self):
        payload = json.loads(export_graph(*self._analyze_fixtures(), "json"))
        assert payload["version"] == 1
        labels = [node["id"] for node in payload["nodes"]]
        assert "seeded_flow.digest_batch" in labels
        assert "seeded_flow.MemberReport" in labels  # class nodes too
        edges = {
            (edge["caller"], edge["callee"]) for edge in payload["edges"]
        }
        assert (
            "seeded_flow.digest_batch",
            "flow_helpers.jittered_stamp",
        ) in edges
        assert payload["counts"]["nodes"] == len(payload["nodes"])

    def test_unresolvable_calls_become_open_edges_not_drops(self):
        payload = json.loads(export_graph(*self._analyze_fixtures(), "json"))
        # acc.update / member.encode etc. resolve to no known function;
        # they must be *recorded* as open edges, never silently dropped.
        open_calls = {edge["callee"] for edge in payload["open_edges"]}
        assert any("update" in call for call in open_calls)
        assert all(edge["reason"] for edge in payload["open_edges"])

    def test_dot_export_renders(self):
        dot = export_graph(*self._analyze_fixtures(), fmt="dot")
        assert dot.startswith("digraph")
        assert "seeded_flow" in dot

    def test_cli_graph_json_deterministic(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import hashlib\n"
            "def run_digest(payload):\n"
            "    return hashlib.sha256(payload).hexdigest()\n"
        )
        outs = []
        for _ in range(2):
            assert lint_main([str(tmp_path), "--graph", "json"]) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]
        assert json.loads(outs[0])["counts"]["nodes"] == 1

    def test_cli_graph_syntax_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert lint_main([str(tmp_path), "--graph", "json"]) == 2
        assert "cannot parse" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the --audit crosscheck
# ----------------------------------------------------------------------
class TestAudit:
    def test_confirmed_heuristic_findings_stay_silent(self, tmp_path):
        # ORD001 at the walk + FLOW002 at the sink agree: no AUDIT001.
        result = lint_snippets(
            tmp_path,
            mod=(
                "import hashlib\n"
                "def tree_digest(root):\n"
                "    h = hashlib.sha256()\n"
                "    for p in root.rglob('*.py'):\n"
                "        h.update(p.read_bytes())\n"
                "    return h.hexdigest()\n"
            ),
        )
        audited = lint_paths([tmp_path], audit=True)
        assert sorted(codes_of(result)) == ["FLOW002", "ORD001"]
        assert "AUDIT001" not in codes_of(audited)

    def test_unconfirmed_heuristic_finding_gains_audit001(self, tmp_path):
        # CANON001's name heuristic flags payload-named functions, but
        # nothing provably consumes this one — the audit surfaces the
        # disagreement instead of letting either layer win silently.
        (tmp_path / "mod.py").write_text(
            "def legacy_payload(shock):\n"
            "    return 's=%g' % shock\n"
        )
        audited = lint_paths([tmp_path], audit=True)
        assert sorted(codes_of(audited)) == ["AUDIT001", "CANON001"]
        [audit] = [f for f in audited.findings if f.code == "AUDIT001"]
        assert "CANON001" in audit.message

    def test_seeded_canon_audit_pins_the_one_unconfirmed_case(self):
        audited = lint_paths(
            [FIXTURES / "seeded_canon.py"], audit=True
        )
        audits = [f for f in audited.findings if f.code == "AUDIT001"]
        assert [f.line for f in audits] == [18]  # legacy_payload only

    def test_shipped_tree_is_audit_clean(self):
        from repro.lint import Baseline

        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths(
            [REPO_ROOT / "src" / "repro"], baseline=baseline, audit=True
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)


# ----------------------------------------------------------------------
# the analysis cache
# ----------------------------------------------------------------------
class TestAnalysisCache:
    def test_same_content_reuses_one_analysis(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def f():\n"
            "    return 1\n"
        )
        sources = [SourceFile.load(tmp_path / "mod.py", tmp_path)]
        first = analyze(sources)
        second = analyze(
            [SourceFile.load(tmp_path / "mod.py", tmp_path)]
        )
        assert first[1] is second[1]

    def test_changed_content_recomputes(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f():\n    return 1\n")
        first = analyze([SourceFile.load(path, tmp_path)])
        path.write_text("def f():\n    return 2\n")
        second = analyze([SourceFile.load(path, tmp_path)])
        assert first[1] is not second[1]
