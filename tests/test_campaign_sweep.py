"""Deviation-point sweep: the paper's exact compensation at EVERY round.

The paper's quantitative claim is that a sore-loser abort at *any* protocol
step leaves every compliant party compensated by the matching premium.
These tests drive a halt at every round of the two-party (§5.2),
multi-party (§7.1), and broker (§8.2) protocols through the
:class:`ScenarioMatrix` and pin the exact premium transfers:

- two-party: Bob reneging after Alice escrows costs him exactly ``p_b``
  (paid to Alice); Alice reneging after Bob escrows costs her a net ``p_a``
  (she forfeits ``p_a + p_b`` and recovers ``p_b``),
- multi-party / broker: the per-round flows of the figure-3 graph and the
  default brokered deal, plus the invariants behind them — premium flows
  are zero-sum, deviating is never profitable, and every compliant party
  meets its lemma bound.
"""

import pytest

from repro.campaign import CampaignRunner, ScenarioMatrix
from repro.checker import halt_strategies, properties
from repro.core.hedged_broker import HedgedBrokerDeal
from repro.core.hedged_multi_party import HedgedMultiPartySwap
from repro.core.hedged_two_party import HedgedTwoPartySwap


def halt_sweep(builder, props, parties, horizon):
    """Every (party, halt round) scenario for one protocol, via the matrix."""
    matrix = ScenarioMatrix()
    matrix.add_block(
        family="sweep",
        schedule="halt",
        builder=builder,
        properties=props,
        strategies={p: halt_strategies(horizon) for p in parties},
        max_adversaries=1,
        include_compliant=False,
    )
    report = CampaignRunner(matrix).run()
    assert report.ok, [f"{v.scenario}: {v.message}" for v in report.violations]
    table = {}
    for result in report.results:
        axes = dict(result.axes)
        table[(axes["adversaries"], int(axes["round"]))] = dict(result.premium_net)
    return table


def expand(rows):
    """{(party, (lo, hi)): nets} → {(party, round): nets}."""
    out = {}
    for (party, (lo, hi)), nets in rows.items():
        for rnd in range(lo, hi + 1):
            out[(party, rnd)] = nets
    return out


# ----------------------------------------------------------------------
# two-party (§5.2): p_a = 2 compensates Bob, p_b = 1 compensates Alice
# ----------------------------------------------------------------------
TWO_PARTY_EXPECTED = expand({
    # Before Alice escrows (rounds 0-1) nothing is at risk: all refunds.
    ("Bob", (0, 1)): {"Alice": 0, "Bob": 0},
    # Bob reneges while Alice's principal is escrowed: he pays her p_b = 1.
    ("Bob", (2, 5)): {"Alice": 1, "Bob": -1},
    # Halting after his last required action is not a deviation that bites.
    ("Bob", (6, 7)): {"Alice": 0, "Bob": 0},
    # Alice halting before escrowing anything costs no one anything.
    ("Alice", (0, 2)): {"Alice": 0, "Bob": 0},
    # Alice reneges after Bob escrows: she forfeits p_a + p_b = 3 and
    # recovers p_b = 1 — a net transfer of p_a = 2 to Bob.
    ("Alice", (3, 4)): {"Alice": -2, "Bob": 2},
    # From round 5 on she has already redeemed; the swap completes.
    ("Alice", (5, 7)): {"Alice": 0, "Bob": 0},
})


def test_two_party_compensation_at_every_deviation_round():
    table = halt_sweep(
        builder=lambda: HedgedTwoPartySwap().build(),
        props=(properties.no_stuck_escrow, properties.two_party_hedged),
        parties=("Alice", "Bob"),
        horizon=8,
    )
    assert len(table) == 16
    for key, nets in TWO_PARTY_EXPECTED.items():
        assert table[key] == nets, f"{key}: {table[key]} != {nets}"


# ----------------------------------------------------------------------
# multi-party (§7.1): figure-3 graph, premium p = 1, horizon 13
# ----------------------------------------------------------------------
MULTI_PARTY_EXPECTED = expand({
    # The leader halting before Phase 3 just truncates the run (Lemma 5).
    ("A", (0, 3)): {"A": 0, "B": 0, "C": 0},
    # A escrowed on (A,B) and (A,C) then withheld its hashkey: the
    # redemption premiums on both arcs (sized by Equation 1) compensate.
    ("A", (4, 9)): {"A": -4, "B": 3, "C": 1},
    ("A", (10, 12)): {"A": 0, "B": 0, "C": 0},
    ("B", (0, 1)): {"A": 0, "B": 0, "C": 0},
    # B reneges during premium distribution: its escrow premium E(B, v) is
    # forfeited to the blocked counterparty (Lemma 2).
    ("B", (2, 4)): {"A": 10, "B": -10, "C": 0},
    ("B", (5, 7)): {"A": 6, "B": -7, "C": 1},
    ("B", (8, 10)): {"A": 1, "B": -1, "C": 0},
    ("B", (11, 12)): {"A": 0, "B": 0, "C": 0},
    ("C", (0, 2)): {"A": 0, "B": 0, "C": 0},
    ("C", (3, 4)): {"A": 1, "B": 1, "C": -2},
    ("C", (5, 8)): {"A": 1, "B": 3, "C": -4},
    ("C", (9, 10)): {"A": 0, "B": 2, "C": -2},
    ("C", (11, 12)): {"A": 0, "B": 0, "C": 0},
})


def test_multi_party_compensation_at_every_deviation_round():
    horizon = HedgedMultiPartySwap().build().horizon
    assert horizon == 13
    table = halt_sweep(
        builder=lambda: HedgedMultiPartySwap().build(),
        props=(properties.no_stuck_escrow, properties.multi_party_lemmas),
        parties=("A", "B", "C"),
        horizon=horizon,
    )
    assert len(table) == 3 * horizon
    for key, nets in MULTI_PARTY_EXPECTED.items():
        assert table[key] == nets, f"{key}: {table[key]} != {nets}"


# ----------------------------------------------------------------------
# broker (§8.2): default deal, premium p = 1, horizon 12
# ----------------------------------------------------------------------
BROKER_EXPECTED = expand({
    ("Alice", (0, 2)): {"Alice": 0, "Bob": 0, "Carol": 0},
    # The broker walks after posting trading premiums: they are forfeited
    # to the escrowers she blocked (T(A,B) + T(A,C) split).
    ("Alice", (3, 3)): {"Alice": -2, "Bob": 1, "Carol": 1},
    # She walks after both principals are locked: every redemption premium
    # she and the escrowers staked on her keys becomes compensation.
    ("Alice", (4, 6)): {"Alice": -8, "Bob": 4, "Carol": 4},
    ("Alice", (7, 7)): {"Alice": -6, "Bob": 3, "Carol": 3},
    ("Alice", (8, 8)): {"Alice": -2, "Bob": 1, "Carol": 1},
    ("Alice", (9, 11)): {"Alice": 0, "Bob": 0, "Carol": 0},
    ("Bob", (0, 2)): {"Alice": 0, "Bob": 0, "Carol": 0},
    # The seller blocks the deal mid-premium-phase: his escrow premium
    # E(B, A) = T(A) reimburses Alice's passthrough, Carol her deposits.
    ("Bob", (3, 3)): {"Alice": 3, "Bob": -5, "Carol": 2},
    ("Bob", (4, 5)): {"Alice": 1, "Bob": -3, "Carol": 2},
    ("Bob", (6, 7)): {"Alice": 0, "Bob": -1, "Carol": 1},
    # From round 8 Bob's remaining actions are already done: deal completes.
    ("Bob", (8, 11)): {"Alice": 0, "Bob": 0, "Carol": 0},
    ("Carol", (0, 2)): {"Alice": 0, "Bob": 0, "Carol": 0},
    ("Carol", (3, 3)): {"Alice": 3, "Bob": 2, "Carol": -5},
    ("Carol", (4, 5)): {"Alice": 1, "Bob": 2, "Carol": -3},
    ("Carol", (6, 7)): {"Alice": 0, "Bob": 1, "Carol": -1},
    ("Carol", (8, 11)): {"Alice": 0, "Bob": 0, "Carol": 0},
})


def test_broker_compensation_at_every_deviation_round():
    horizon = HedgedBrokerDeal().build().horizon
    assert horizon == 12
    table = halt_sweep(
        builder=lambda: HedgedBrokerDeal().build(),
        props=(properties.no_stuck_escrow, properties.broker_bounds),
        parties=("Alice", "Bob", "Carol"),
        horizon=horizon,
    )
    assert len(table) == 3 * horizon
    for key, nets in BROKER_EXPECTED.items():
        assert table[key] == nets, f"{key}: {table[key]} != {nets}"


# ----------------------------------------------------------------------
# cross-cutting invariants behind the exact tables
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "builder,parties,horizon",
    [
        (lambda: HedgedTwoPartySwap().build(), ("Alice", "Bob"), 8),
        (lambda: HedgedMultiPartySwap().build(), ("A", "B", "C"), 13),
        (lambda: HedgedBrokerDeal().build(), ("Alice", "Bob", "Carol"), 12),
    ],
    ids=["two-party", "multi-party", "broker"],
)
def test_premiums_zero_sum_and_deviation_never_profits(builder, parties, horizon):
    table = halt_sweep(builder, (properties.no_stuck_escrow,), parties, horizon)
    for (adversary, rnd), nets in table.items():
        assert sum(nets.values()) == 0, f"{adversary}@{rnd}: flows not zero-sum"
        assert nets[adversary] <= 0, f"{adversary}@{rnd}: deviation profited"
        for party, net in nets.items():
            if party != adversary:
                assert net >= 0, f"{adversary}@{rnd}: compliant {party} paid {net}"
