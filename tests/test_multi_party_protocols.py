"""Integration tests: base (Herlihy '18) and hedged (§7.1) multi-party swaps."""

import pytest

from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.graph.digraph import figure3_graph, ring_graph
from repro.parties.strategies import Deviant, SkipRule, halt_at, skip_methods
from repro.protocols.base_multi_party import BaseMultiPartySwap
from repro.protocols.instance import execute


def run_base(graph=None, leaders=None, deviations=None):
    builder = BaseMultiPartySwap(graph=graph or figure3_graph(), leaders=leaders or ("A",))
    instance = builder.build()
    result = execute(instance, deviations or {})
    return instance, result, extract_multi_party_outcome(instance, result)


def run_hedged(graph=None, leaders=None, premium=1, deviations=None):
    builder = HedgedMultiPartySwap(
        graph=graph or figure3_graph(),
        leaders=leaders or ("A",),
        premium=premium,
    )
    instance = builder.build()
    result = execute(instance, deviations or {})
    return instance, result, extract_multi_party_outcome(instance, result)


# ----------------------------------------------------------------------
# base protocol
# ----------------------------------------------------------------------
def test_base_figure3_compliant():
    _, result, out = run_base()
    assert out.all_redeemed
    assert not result.reverted()


def test_base_ring_compliant():
    from repro.graph.digraph import ring_graph

    _, result, out = run_base(graph=ring_graph(4), leaders=("P0",))
    assert out.all_redeemed


def test_base_hashkey_paths_in_trace():
    """The accepted hashkeys carry exactly the Figure 3b paths."""
    instance, result, _ = run_base()
    paths = {
        tuple(e.data["arc"]): e.data["path"]
        for e in result.events_named("hashkey_accepted")
    }
    assert paths[("B", "A")] == ("A",)
    assert paths[("C", "A")] == ("A",)
    assert paths[("B", "C")] == ("C", "A")
    assert paths[("A", "B")] in (("B", "A"), ("B", "C", "A"))


def test_base_follower_never_escrows_if_upstream_fails():
    _, _, out = run_base(deviations={"B": lambda a: halt_at(a, 0)})
    # B escrows nothing, so C never sees its incoming asset and abstains
    assert out.arc_states[("B", "C")] == "absent"
    assert out.arc_states[("C", "A")] == "absent"


def test_base_safety_under_halts():
    for who in ("A", "B", "C"):
        for rnd in range(7):
            _, _, out = run_base(deviations={who: lambda a, r=rnd: halt_at(a, r)})
            for party in out.parties:
                if party != who:
                    assert out.safety_holds(party), f"{who}@{rnd} broke {party}"


# ----------------------------------------------------------------------
# hedged protocol — Lemmas 1–6
# ----------------------------------------------------------------------
def test_lemma1_compliant_refunds_everything():
    _, result, out = run_hedged()
    assert out.all_redeemed
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()


def test_hedged_escrow_premium_amounts_deployed():
    instance, _, _ = run_hedged()
    premiums = instance.meta["escrow_premiums"]
    assert premiums[("A", "B")] == 10
    assert premiums[("C", "A")] == 5


def test_lemma5_phase1_failure_nets_zero():
    """A missing escrow premium kills the swap with all premiums refunded."""
    _, _, out = run_hedged(
        deviations={"B": lambda a: skip_methods(a, "deposit_escrow_premium")}
    )
    assert not out.all_redeemed
    assert all(state == "absent" for state in out.arc_states.values())
    for party in ("A", "C"):
        assert out.premium_net[party] == 0


def test_lemma4_phase2_failure_nets_zero():
    """Leader skips redemption premiums: nothing activates, all refunds."""
    _, _, out = run_hedged(
        deviations={"A": lambda a: skip_methods(a, "deposit_redemption_premium")}
    )
    assert all(state == "absent" for state in out.arc_states.values())
    for party in ("B", "C"):
        assert out.premium_net[party] >= 0


def test_lemma3_phase3_failure_compensates_with_escrow_premiums():
    """C never escrows its principal: every compliant party nets >= bound."""
    _, _, out = run_hedged(
        deviations={"C": lambda a: skip_methods(a, "escrow_principal")}
    )
    assert out.arc_states[("C", "A")] == "absent"
    for party in ("A", "B"):
        assert out.safety_holds(party)
        assert out.hedged_holds(party)
    assert out.premium_net["C"] < 0  # the deviator pays


def test_lemma2_phase4_withholding_compensates_per_asset():
    """B refuses to forward hashkeys: compliant escrowers profit >= p each."""
    _, _, out = run_hedged(deviations={"B": lambda a: halt_at(a, 9)})
    for party in ("A", "C"):
        assert out.hedged_holds(party)
    # A's asset on (A,B) was locked and unredeemed; A collects at least p
    assert out.arc_states[("A", "B")] == "refunded"
    assert out.premium_net["A"] >= 1


def test_hedged_exhaustive_halt_sweep_figure3():
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    for who in ("A", "B", "C"):
        for rnd in range(instance.horizon):
            _, _, out = run_hedged(deviations={who: lambda a, r=rnd: halt_at(a, r)})
            for party in out.parties:
                if party == who:
                    continue
                assert out.safety_holds(party), f"{who}@{rnd}: safety({party})"
                assert out.hedged_holds(party), f"{who}@{rnd}: hedged({party})"


def test_hedged_ring4_halt_sweep():
    graph = ring_graph(4)
    instance = HedgedMultiPartySwap(graph=graph, leaders=("P0",)).build()
    for who in graph.parties:
        for rnd in range(0, instance.horizon, 2):
            _, _, out = run_hedged(
                graph=ring_graph(4),
                leaders=("P0",),
                deviations={who: lambda a, r=rnd: halt_at(a, r)},
            )
            for party in out.parties:
                if party != who:
                    assert out.safety_holds(party)
                    assert out.hedged_holds(party)


def test_hedged_two_leaders_complete_graph():
    from repro.graph.digraph import complete_graph

    _, result, out = run_hedged(graph=complete_graph(3), leaders=("P0", "P1"))
    assert out.all_redeemed
    assert all(net == 0 for net in out.premium_net.values())


def test_hedged_selective_arc_skip():
    """C escrows everywhere except one arc (targets a single counterparty)."""
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    chain_name, address = instance.meta["addresses"][("C", "A")]

    def transform(actor):
        return Deviant(actor, skip_rules=(SkipRule(method="escrow_principal", contract=address),))

    result = execute(instance, {"C": transform})
    out = extract_multi_party_outcome(instance, result)
    for party in ("A", "B"):
        assert out.safety_holds(party)
        assert out.hedged_holds(party)


def test_outcome_accessors():
    _, _, out = run_hedged()
    assert out.out_arcs_of("B") == [("B", "A"), ("B", "C")]
    assert out.in_arcs_of("A") == [("B", "A"), ("C", "A")]
    assert out.unredeemed_escrow_count("B") == 0
