"""Sharded execution, pool reuse, selection honesty, and the new axes.

These pin the PR-2 contracts: ``limit=N`` yields exactly ``min(N, total)``
scenarios (the subsampler can never silently collapse), ``shard=(i, n)``
partitions the selection exactly, :func:`merge_reports` recombines shard
runs into the byte-identical unsharded run digest, a partial run's digest
preamble records its selection so it can never masquerade as full
coverage, tiny process runs fall back to serial, and a persistent
:class:`WorkerPool` reproduces fresh-pool digests across reused runs.
"""

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignRunner,
    MatrixSpec,
    ScenarioMatrix,
    WorkerPool,
    default_matrix,
    merge_reports,
)
from repro.campaign.runner import MIN_PROCESS_SCENARIOS
from repro.checker import halt_strategies, properties
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap


def two_party_builder():
    return HedgedTwoPartySwap().build()


def small_matrix(seed: int = 0) -> ScenarioMatrix:
    matrix = ScenarioMatrix(seed=seed)
    matrix.add_block(
        family="two-party",
        schedule="default",
        builder=two_party_builder,
        properties=(properties.no_stuck_escrow, properties.two_party_hedged),
        strategies={p: halt_strategies(8) for p in ("Alice", "Bob")},
        max_adversaries=2,
    )
    return matrix  # 81 scenarios


# ----------------------------------------------------------------------
# limit: exactly min(N, total), no silent collapse (satellite bugfix)
# ----------------------------------------------------------------------
def test_limit_total_minus_one_yields_exactly_that_many():
    matrix = small_matrix()
    total = len(matrix)
    assert len(list(matrix.scenarios(limit=total - 1))) == total - 1


@pytest.mark.parametrize("limit", [1, 2, 3, 79, 80, 81, 82, 1000])
def test_limit_yields_exactly_min_of_limit_and_total(limit):
    matrix = small_matrix()
    total = len(matrix)
    selected = list(matrix.scenarios(limit=limit))
    assert len(selected) == min(limit, total)
    # global indices stay strictly increasing (full-matrix order)
    indices = [s.index for s in selected]
    assert indices == sorted(set(indices))


def test_selection_is_exact_for_every_limit_on_the_default_matrix():
    matrix = default_matrix(families=["broker", "bootstrap"])
    total = len(matrix)
    for limit in range(1, total + 2):
        assert len(matrix.selection(limit=limit)) == min(limit, total)


# ----------------------------------------------------------------------
# stratified limit: no family/block skipped (satellite bugfix)
# ----------------------------------------------------------------------
def _block_of(matrix, index):
    offset = 0
    for j, block in enumerate(matrix.blocks):
        if offset <= index < offset + block.size():
            return j
        offset += block.size()
    raise AssertionError(f"index {index} beyond matrix")


def test_limit_at_or_above_block_count_covers_every_block():
    matrix = default_matrix(families=["broker", "auction", "bootstrap"])
    blocks = len(matrix.blocks)
    for limit in (blocks, blocks + 3, 2 * blocks, len(matrix) - 1):
        selected = matrix.selection(limit=limit)
        assert len(selected) == min(limit, len(matrix))
        covered = {_block_of(matrix, index) for index in selected}
        assert covered == set(range(blocks)), (limit, covered)


def test_small_families_survive_limits_that_used_to_skip_them():
    # the documented caveat this PR fixes: an even index-range spread with
    # a small N skipped the smallest families entirely
    matrix = default_matrix(families=["multi-party", "bootstrap"])
    report = CampaignRunner(matrix, limit=len(matrix.blocks) + 4).run()
    families = {value for value, _, _ in report.axis_table("family")}
    assert families == {"multi-party", "bootstrap"}


def test_below_block_count_limit_spreads_across_blocks():
    matrix = default_matrix(families=["broker", "auction", "bootstrap"])
    blocks = len(matrix.blocks)
    selected = matrix.selection(limit=3)
    assert len(selected) == 3
    covered = {_block_of(matrix, index) for index in selected}
    assert len(covered) == 3  # three distinct blocks, evenly spaced


def test_stratified_allocation_is_proportional_within_one():
    matrix = small_matrix()  # one 81-scenario block
    matrix.add_block(
        family="tiny",
        schedule="x",
        builder=two_party_builder,
        properties=(),
        strategies={"Alice": halt_strategies(2)},
    )  # 3 scenarios
    selected = matrix.selection(limit=28)
    per_block = [0, 0]
    for index in selected:
        per_block[_block_of(matrix, index)] += 1
    assert sum(per_block) == 28
    assert per_block[1] >= 1  # the tiny block is never skipped
    # the big block keeps roughly its proportional share
    assert per_block[0] == 28 - per_block[1] >= 26


# ----------------------------------------------------------------------
# empty shards: more shards than scenarios (satellite bugfix)
# ----------------------------------------------------------------------
def test_empty_shards_run_and_merge_without_corruption():
    matrix = small_matrix()  # 81 scenarios
    reference = CampaignRunner(matrix).run()
    n = 100  # > total: some shards are empty
    shards = [
        CampaignRunner(small_matrix(), shard=(i, n)).run()
        for i in range(1, n + 1)
    ]
    empties = [s for s in shards if s.scenarios == 0]
    assert empties, "expected empty shards with n > total"
    # an empty shard survives the JSON transport with its digest intact
    restored = CampaignReport.from_json(empties[0].to_json())
    assert restored.run_digest == empties[0].run_digest
    assert restored.scenarios == 0
    merged = merge_reports(
        [CampaignReport.from_json(s.to_json()) for s in shards]
    )
    assert merged.run_digest == reference.run_digest
    assert merged.complete
    assert merged.scenarios == reference.scenarios
    assert merged.premium_net_hist == reference.premium_net_hist


def test_empty_shard_of_a_limited_selection_merges_to_the_limited_digest():
    limited = CampaignRunner(small_matrix(), limit=8).run()
    shards = [
        CampaignRunner(small_matrix(), limit=8, shard=(i, 12)).run()
        for i in range(1, 13)
    ]
    assert any(s.scenarios == 0 for s in shards)
    assert merge_reports(shards).run_digest == limited.run_digest


# ----------------------------------------------------------------------
# shard: contiguous, exact partition of the selection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 3, 7, 81, 100])
def test_shards_partition_the_full_matrix(n):
    matrix = small_matrix()
    pieces = [matrix.selection(shard=(i, n)) for i in range(1, n + 1)]
    flat = [index for piece in pieces for index in piece]
    assert flat == list(range(len(matrix)))  # exact, ordered, no overlap


def test_shards_partition_a_limited_selection():
    matrix = small_matrix()
    whole = matrix.selection(limit=50)
    pieces = [matrix.selection(limit=50, shard=(i, 3)) for i in (1, 2, 3)]
    assert [i for piece in pieces for i in piece] == whole


@pytest.mark.parametrize("shard", [(0, 3), (4, 3), (1, 0), (-1, 2)])
def test_invalid_shards_rejected(shard):
    with pytest.raises(ValueError):
        small_matrix().selection(shard=shard)
    with pytest.raises(ValueError):
        CampaignRunner(small_matrix(), shard=shard)


# ----------------------------------------------------------------------
# merge_reports: byte-identical unsharded digest (tentpole contract)
# ----------------------------------------------------------------------
def test_merged_shards_equal_unsharded_run_digest():
    unsharded = CampaignRunner(small_matrix()).run()
    shards = [
        CampaignRunner(small_matrix(), shard=(i, 3)).run() for i in (1, 2, 3)
    ]
    assert sum(s.scenarios for s in shards) == unsharded.scenarios
    merged = merge_reports(shards)
    assert merged.run_digest == unsharded.run_digest
    assert merged.complete
    assert merged.scenarios == unsharded.scenarios
    assert merged.transactions == unsharded.transactions
    assert merged.by_axis.keys() == unsharded.by_axis.keys()
    assert merged.premium_net_hist == unsharded.premium_net_hist


def test_merged_limited_shards_equal_limited_run_digest():
    limited = CampaignRunner(small_matrix(), limit=50).run()
    shards = [
        CampaignRunner(small_matrix(), limit=50, shard=(i, 2)).run()
        for i in (1, 2)
    ]
    assert merge_reports(shards).run_digest == limited.run_digest


def test_merge_order_does_not_matter():
    shards = [
        CampaignRunner(small_matrix(), shard=(i, 3)).run() for i in (1, 2, 3)
    ]
    forward = merge_reports(shards)
    shuffled = merge_reports([shards[2], shards[0], shards[1]])
    assert forward.run_digest == shuffled.run_digest


def test_merge_rejects_mismatched_inputs():
    with pytest.raises(ValueError):
        merge_reports([])
    a = CampaignRunner(small_matrix(), shard=(1, 2)).run()
    with pytest.raises(ValueError, match="different matrices"):
        merge_reports([a, CampaignRunner(small_matrix(seed=1), shard=(2, 2)).run()])
    with pytest.raises(ValueError, match="duplicate"):
        merge_reports([a, CampaignRunner(small_matrix(), shard=(1, 2)).run()])
    with pytest.raises(ValueError, match="different limits"):
        merge_reports([a, CampaignRunner(small_matrix(), limit=40, shard=(2, 2)).run()])


def test_partial_merge_cannot_masquerade_as_full():
    unsharded = CampaignRunner(small_matrix()).run()
    two_of_three = merge_reports(
        [CampaignRunner(small_matrix(), shard=(i, 3)).run() for i in (1, 2)]
    )
    assert not two_of_three.complete
    assert two_of_three.run_digest != unsharded.run_digest
    assert two_of_three.selection == "partial"  # the label is honest too
    assert "partial" in two_of_three.summary()


# ----------------------------------------------------------------------
# selection honesty in the report (satellite bugfix)
# ----------------------------------------------------------------------
def test_limited_report_records_selection_and_differs_from_full():
    full = CampaignRunner(small_matrix()).run()
    limited = CampaignRunner(small_matrix(), limit=80).run()
    assert full.complete and full.selection == "full"
    assert not limited.complete
    assert limited.selection == "limit=80:stratified"
    assert limited.scenarios == 80 and limited.total_scenarios == 81
    assert limited.matrix_digest == full.matrix_digest
    assert limited.run_digest != full.run_digest
    assert "limit=80:stratified: 80/81" in limited.summary()


def test_sharded_report_records_selection():
    shard = CampaignRunner(small_matrix(), shard=(2, 3)).run()
    assert shard.selection == "shard=2/3"
    assert not shard.complete
    assert shard.shard == (2, 3)


def test_noop_selections_normalize_to_the_full_digest():
    full = CampaignRunner(small_matrix()).run()
    clamped = CampaignRunner(small_matrix(), limit=10_000).run()
    one_shard = CampaignRunner(small_matrix(), shard=(1, 1)).run()
    assert clamped.run_digest == full.run_digest
    assert one_shard.run_digest == full.run_digest
    assert clamped.complete and one_shard.complete


def test_report_json_roundtrip_preserves_digest_and_aggregates():
    report = CampaignRunner(small_matrix(), shard=(1, 2)).run()
    restored = CampaignReport.from_json(report.to_json())
    assert restored.run_digest == report.run_digest
    assert restored.shard == (1, 2)
    assert restored.scenarios == report.scenarios
    assert restored.premium_net_hist == report.premium_net_hist
    assert [r.digest for r in restored.results] == [
        r.digest for r in report.results
    ]
    with pytest.raises(ValueError, match="digest mismatch"):
        CampaignReport.from_json(
            report.to_json().replace(report.results[0].digest, "0" * 64)
        )


# ----------------------------------------------------------------------
# serial fallback for tiny selections (satellite bugfix)
# ----------------------------------------------------------------------
def test_tiny_process_run_falls_back_to_serial():
    report = CampaignRunner(
        small_matrix(), backend="process", limit=MIN_PROCESS_SCENARIOS - 1
    ).run()
    assert report.backend == "serial"
    assert report.workers == 1
    big = CampaignRunner(small_matrix(), backend="process").run()
    assert big.backend == "process"  # 81 scenarios clears the threshold


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
def test_worker_pool_reuse_matches_serial_digests():
    serial = CampaignRunner(default_matrix(families=["broker", "bootstrap"])).run()
    with WorkerPool(workers=2) as pool:
        first = CampaignRunner(
            default_matrix(families=["broker", "bootstrap"]),
            backend="process",
            pool=pool,
        ).run()
        second = CampaignRunner(
            default_matrix(families=["broker", "bootstrap"]),
            backend="process",
            pool=pool,
        ).run()
        # a different matrix through the same (already started) workers
        other = CampaignRunner(
            default_matrix(families=["bootstrap"]), backend="process", pool=pool
        ).run()
    assert first.backend == second.backend == "process:pooled"
    assert first.run_digest == second.run_digest == serial.run_digest
    assert other.backend == "process:pooled"  # started pool serves tiny runs
    assert other.ok


def test_worker_pool_shards_merge_to_the_serial_digest():
    serial = CampaignRunner(default_matrix(families=["broker", "bootstrap"])).run()
    with WorkerPool(workers=2) as pool:
        shards = [
            CampaignRunner(
                default_matrix(families=["broker", "bootstrap"]),
                backend="process",
                pool=pool,
                shard=(i, 2),
            ).run()
            for i in (1, 2)
        ]
    assert merge_reports(shards).run_digest == serial.run_digest


def test_pool_requires_process_backend_and_rebuildable_matrix():
    pool = WorkerPool(workers=2)
    with pytest.raises(ValueError, match="backend"):
        CampaignRunner(default_matrix(families=["bootstrap"]), pool=pool)
    with pytest.raises(ValueError, match="rebuildable"):
        CampaignRunner(small_matrix(), backend="process", pool=pool)
    with pytest.raises(ValueError, match="workers= conflicts"):
        CampaignRunner(
            default_matrix(families=["bootstrap"]),
            backend="process",
            workers=8,
            pool=pool,
        )
    assert not pool.started  # nothing forced a fork


def test_matrix_mutated_after_runner_construction_fails_loudly():
    matrix = default_matrix(families=["bootstrap"])
    with WorkerPool(workers=2) as pool:
        # start the pool so the pooled path is chosen regardless of size
        CampaignRunner(
            default_matrix(families=["bootstrap"]), backend="process", pool=pool
        ).run()
        runner = CampaignRunner(matrix, backend="process", pool=pool)
        matrix.add_block(
            family="extra",
            schedule="x",
            builder=two_party_builder,
            properties=(),
            strategies={"Alice": halt_strategies(2)},
        )
        with pytest.raises(ValueError, match="rebuildable"):
            runner.run()


def test_add_block_invalidates_the_rebuild_spec():
    matrix = default_matrix(families=["bootstrap"])
    assert isinstance(matrix.spec, MatrixSpec)
    rebuilt = matrix.spec.build()
    assert rebuilt.digest() == matrix.digest()
    matrix.add_block(
        family="extra",
        schedule="x",
        builder=two_party_builder,
        properties=(),
        strategies={"Alice": halt_strategies(2)},
    )
    assert matrix.spec is None  # the recipe no longer describes the matrix


def test_unknown_matrix_factory_raises():
    with pytest.raises(KeyError, match="unknown matrix factory"):
        MatrixSpec(factory="nope").build()


# ----------------------------------------------------------------------
# new workload axes: one compensation-bound sweep through each
# ----------------------------------------------------------------------
def test_two_party_premium_grid_and_stretched_schedules_hold_bounds():
    matrix = default_matrix(families=["two-party"])
    report = CampaignRunner(matrix, limit=400).run()
    assert report.ok, [f"{v.scenario}: {v.message}" for v in report.violations]
    schedules = {value for value, _, _ in report.axis_table("schedule")}
    grid = {f"p{pa}:{pb}" for pa in (1, 2, 3) for pb in (1, 2)}
    assert grid <= schedules  # the whole premium-growth grid is swept
    assert {"p2:1/k2", "p2:1/k3"} <= schedules  # stretched k·Δ timeouts


def test_stretched_spec_scales_every_deadline():
    spec = HedgedTwoPartySpec().stretched(3)
    assert spec.alice_premium_deadline == 3
    assert spec.bob_redeem_deadline == 18
    assert spec.premium_a == HedgedTwoPartySpec().premium_a  # premiums untouched
    with pytest.raises(ValueError):
        HedgedTwoPartySpec().stretched(0)


def test_multi_party_larger_graphs_hold_lemma_bounds():
    report = CampaignRunner(default_matrix(families=["multi-party"])).run()
    assert report.ok, [f"{v.scenario}: {v.message}" for v in report.violations]
    schedules = {value for value, _, _ in report.axis_table("schedule")}
    # complete:7/8 joined once worst-case funding enumerated member
    # subsets instead of simple paths (coarsened halt grids)
    assert {
        "ring5/p1", "ring8/p1", "complete4/p1", "complete5/p2",
        "complete7/p1", "complete8/p1",
    } <= schedules


def test_sealed_auction_family_holds_lemma_bounds():
    report = CampaignRunner(default_matrix(families=["sealed-auction"])).run()
    assert report.ok, [f"{v.scenario}: {v.message}" for v in report.violations]
    rows = report.axis_table("family")
    assert rows == [("sealed-auction", report.scenarios, 0)]
    # both the hedged (p1) and unhedged base (p0) forms are swept
    schedules = {value for value, _, _ in report.axis_table("schedule")}
    assert "p0/honest" in schedules
    assert any(s.startswith("p1/") for s in schedules)
