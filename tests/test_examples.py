"""Every example script must run clean — they are part of the public API
surface and double as living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-800:]
    assert completed.stdout  # every example narrates what it shows


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship seven
