"""The declarative ExperimentSpec API and its protocol contracts (ISSUE 5).

Pins:

- **spec round-trips**: JSON round-trip with digest stamping, tamper
  detection on edited specs, and a digest that covers exactly the
  result-determining fields (backend/workers/expect excluded),
- **spec-vs-flag equivalence** (acceptance criterion): for each legacy
  subcommand the spec-driven run reproduces the flag-driven run digest
  byte-identically,
- **Report protocol**: ``kind`` dispatch in ``report_from_json`` for all
  three report kinds, tamper detection on the envelope kind, legacy
  (kind-less) payload inference, and kind-aware merge dispatch,
- **incremental result cache**: a warm re-run reports a nonzero hit-rate
  with an unchanged digest, refinement probes hit the store a lattice run
  warmed, and the cache refuses matrices without a rebuild spec.
"""

import json

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignRunner,
    Experiment,
    ExperimentError,
    ExperimentSpec,
    ResultCache,
    ablate_spec,
    ablation_matrix,
    campaign_spec,
    default_matrix,
    merge_reports_any,
    reduce_frontier,
    refine_frontier,
    refine_spec,
    report_from_json,
    registered_report_kinds,
)
from repro.campaign.ablation import FrontierReport, RefinedFrontierReport

GRID = dict(
    families=("two-party",),
    premium_fractions=(0.0, 0.02, 0.05),
    shock_fractions=(0.045,),
    stages=("staked",),
)


def grid_matrix():
    return ablation_matrix(
        families=GRID["families"],
        premium_fractions=GRID["premium_fractions"],
        shock_fractions=GRID["shock_fractions"],
        stages=GRID["stages"],
    )


# ----------------------------------------------------------------------
# spec round-trips and digest semantics
# ----------------------------------------------------------------------
def test_spec_json_roundtrip_and_digest_stability():
    spec = ablate_spec(**GRID)
    restored = ExperimentSpec.from_json(spec.to_json())
    assert restored == spec
    assert restored.digest() == spec.digest()
    # the stamped digest is recomputed: silent edits are rejected
    data = json.loads(spec.to_json())
    data["matrix"]["kwargs"]["premium_fractions"] = [0.0, 0.03]
    with pytest.raises(ExperimentError, match="digest mismatch"):
        ExperimentSpec.from_json(json.dumps(data))


def test_spec_digest_covers_results_not_execution_layout():
    serial = ablate_spec(**GRID)
    pooled = ablate_spec(backend="pooled", workers=2, **GRID)
    expected = ablate_spec(expect=(("frontier", "0" * 64),), **GRID)
    # backend/workers/expect never change what runs, so they never change
    # the spec identity
    assert serial.digest() == pooled.digest() == expected.digest()
    other_grid = ablate_spec(
        families=("two-party",),
        premium_fractions=(0.0, 0.03),
        shock_fractions=(0.045,),
        stages=("staked",),
    )
    assert other_grid.digest() != serial.digest()
    refine = refine_spec(**GRID)
    assert refine.digest() != serial.digest()  # kind is identity
    assert refine_spec(tol=0.0078125, **GRID).digest() != refine.digest()


def test_spec_recipes_match_the_factories_without_building():
    # the spec builders compute the normalized rebuild recipe directly;
    # it must equal what the factory stamps on a built matrix, for every
    # normalization path (defaults, list inputs, un-canonical floats)
    from repro.campaign import default_matrix_spec
    from repro.campaign.ablation import ablation_matrix_spec

    cases = [
        dict(),
        dict(families=["two-party", "broker"], premium_fractions=[0, -0.0]),
        dict(shock_fractions=(0.045,), stages=["staked", "round:3"], seed=7),
        dict(coalitions=True, families=("broker",)),
    ]
    for kwargs in cases:
        assert ablation_matrix_spec(**kwargs) == ablation_matrix(**kwargs).spec
    assert default_matrix_spec() == default_matrix().spec
    assert default_matrix_spec(
        families=["broker", "broker"], max_adversaries=2
    ) == default_matrix(families=["broker", "broker"], max_adversaries=2).spec
    assert ablate_spec(**GRID).matrix == grid_matrix().spec


def test_spec_validation_rejects_malformed_fields():
    good = ablate_spec(**GRID)
    with pytest.raises(ExperimentError, match="unknown experiment kind"):
        ExperimentSpec(kind="nope", matrix=good.matrix)
    with pytest.raises(ExperimentError, match="unknown backend"):
        ExperimentSpec(kind="ablate", matrix=good.matrix, backend="threads")
    with pytest.raises(ExperimentError, match="tol applies only"):
        ExperimentSpec(kind="ablate", matrix=good.matrix, tol=0.01)
    with pytest.raises(ExperimentError, match="full lattice coverage"):
        ExperimentSpec(kind="ablate-refine", matrix=good.matrix, shard=(1, 2))
    with pytest.raises(ValueError, match="shard"):
        ExperimentSpec(kind="ablate", matrix=good.matrix, shard=(3, 2))


# ----------------------------------------------------------------------
# spec-vs-flag digest equivalence (acceptance criterion)
# ----------------------------------------------------------------------
def test_campaign_spec_reproduces_flag_driven_run_digest():
    flag_report = CampaignRunner(
        default_matrix(families=("broker", "auction")), limit=40
    ).run()
    spec = campaign_spec(families=("broker", "auction"), limit=40)
    result = Experiment(spec).run()
    assert result.campaign.run_digest == flag_report.run_digest
    assert result.primary is result.campaign


def test_ablate_spec_reproduces_flag_driven_frontier_digest():
    flag_frontier = reduce_frontier(CampaignRunner(grid_matrix()).run())
    result = Experiment(ablate_spec(**GRID)).run()
    assert result.frontier.digest == flag_frontier.digest
    assert result.campaign.matrix_digest == grid_matrix().digest()
    assert result.primary is result.frontier


def test_refine_spec_reproduces_flag_driven_refined_digest():
    flag_refined = refine_frontier(
        reduce_frontier(CampaignRunner(grid_matrix()).run())
    )
    result = Experiment(refine_spec(**GRID)).run()
    assert result.refined.digest == flag_refined.digest
    assert result.primary is result.refined


def test_sharded_spec_runs_merge_to_the_unsharded_digest():
    unsharded = Experiment(ablate_spec(**GRID)).run()
    shards = [
        Experiment(ablate_spec(shard=(i, 2), **GRID)).run() for i in (1, 2)
    ]
    assert all(shard.frontier is None for shard in shards)  # partial runs
    merged = merge_reports_any([shard.campaign for shard in shards])
    assert merged.run_digest == unsharded.campaign.run_digest
    assert reduce_frontier(merged).digest == unsharded.frontier.digest


def test_expectations_enforced_by_the_facade():
    good = Experiment(ablate_spec(**GRID)).run()
    ok_spec = ablate_spec(
        expect=(("frontier", good.frontier.digest),), **GRID
    )
    Experiment(ok_spec).run()  # matching digests pass silently
    bad_spec = ablate_spec(expect=(("frontier", "0" * 64),), **GRID)
    with pytest.raises(ExperimentError, match="digest mismatch"):
        Experiment(bad_spec).run()
    missing = ablate_spec(
        shard=(1, 2), expect=(("frontier", good.frontier.digest),), **GRID
    )
    with pytest.raises(ExperimentError, match="partial coverage"):
        Experiment(missing).run()


# ----------------------------------------------------------------------
# the Report protocol: kind dispatch, tamper detection, kind-aware merge
# ----------------------------------------------------------------------
def test_report_kinds_registered():
    assert registered_report_kinds() == (
        "campaign",
        "frontier",
        "refined-frontier",
    )
    assert CampaignReport.kind == "campaign"
    assert FrontierReport.kind == "frontier"
    assert RefinedFrontierReport.kind == "refined-frontier"


def test_report_from_json_dispatches_all_three_kinds():
    result = Experiment(refine_spec(**GRID)).run()
    for report in (result.campaign, result.frontier, result.refined):
        restored = report_from_json(report.to_json())
        assert type(restored) is type(report)
        assert restored.digest == report.digest


def test_report_kind_tamper_and_inference():
    result = Experiment(ablate_spec(**GRID)).run()
    # flipping the envelope kind fails the matching deserializer
    data = json.loads(result.frontier.to_json())
    assert data["kind"] == "frontier"
    data["kind"] = "campaign"
    with pytest.raises(ValueError):
        report_from_json(json.dumps(data))
    with pytest.raises(ValueError, match="kind mismatch"):
        FrontierReport.from_json(
            json.dumps({**json.loads(result.frontier.to_json()),
                        "kind": "refined-frontier"})
        )
    # files written before the protocol carry no kind: shape inference
    for report in (result.campaign, result.frontier):
        legacy = json.loads(report.to_json())
        del legacy["kind"]
        restored = report_from_json(json.dumps(legacy))
        assert restored.digest == report.digest
    with pytest.raises(ValueError, match="not a recognizable report"):
        report_from_json(json.dumps({"hello": "world"}))


def test_merge_dispatch_is_kind_aware():
    shards = [
        CampaignRunner(grid_matrix(), shard=(i, 2)).run() for i in (1, 2)
    ]
    merged = merge_reports_any(shards)
    assert merged.run_digest == CampaignRunner(grid_matrix()).run().run_digest
    frontier = reduce_frontier(merged)
    with pytest.raises(ValueError, match="reduced artifacts"):
        merge_reports_any([frontier, frontier])
    with pytest.raises(ValueError, match="mixed report kinds"):
        merge_reports_any([shards[0], frontier])
    with pytest.raises(ValueError, match="nothing to merge"):
        merge_reports_any([])


# ----------------------------------------------------------------------
# the incremental result cache
# ----------------------------------------------------------------------
def test_warm_cache_rerun_keeps_the_digest_and_reports_hits(tmp_path):
    cache = ResultCache(tmp_path / "store")
    cold = Experiment(ablate_spec(**GRID), cache=cache).run()
    assert cold.cache_hits == 0
    warm = Experiment(ablate_spec(**GRID), cache=cache).run()
    assert warm.campaign.cache_hits == warm.campaign.scenarios > 0
    assert warm.campaign.cache_hit_rate == 1.0
    assert warm.campaign.run_digest == cold.campaign.run_digest
    assert warm.frontier.digest == cold.frontier.digest
    # the hit count survives report transport but never enters the digest
    restored = CampaignReport.from_json(warm.campaign.to_json())
    assert restored.cache_hits == warm.campaign.cache_hits
    assert restored.run_digest == cold.campaign.run_digest


def test_lattice_run_warms_the_refinement_probes(tmp_path):
    cache = ResultCache(tmp_path / "store")
    cold = Experiment(refine_spec(**GRID), cache=cache).run()
    warm = Experiment(refine_spec(**GRID), cache=cache).run()
    assert warm.refined.digest == cold.refined.digest
    # lattice + every bisection probe served from the store
    probes = sum(len(row.probes) for row in warm.refined.rows)
    assert warm.cache_hits == warm.campaign.scenarios + 2 * probes
    assert warm.cache_hits > warm.campaign.scenarios  # probes hit too


def test_cache_misses_on_different_blocks_and_requires_rebuildable_matrix(
    tmp_path,
):
    cache = ResultCache(tmp_path / "store")
    Experiment(ablate_spec(**GRID), cache=cache).run()
    other = Experiment(
        ablate_spec(
            families=("two-party",),
            premium_fractions=(0.0, 0.03),
            shock_fractions=(0.045,),
            stages=("staked",),
        ),
        cache=cache,
    ).run()
    # pi=0 cell is shared with the first grid; the 0.03 cell is not
    assert 0 < other.cache_hits < other.campaign.scenarios
    from repro.campaign import ScenarioMatrix

    with pytest.raises(ValueError, match="rebuildable matrix"):
        CampaignRunner(ScenarioMatrix(), cache=cache)


# ----------------------------------------------------------------------
# the CLI spec workflow: spec -> run -> merge
# ----------------------------------------------------------------------
def test_cli_spec_run_reproduces_the_legacy_digest(tmp_path, capsys):
    from repro.cli import main

    flag_frontier = reduce_frontier(CampaignRunner(grid_matrix()).run())
    spec_path = tmp_path / "spec.json"
    main([
        "spec", "ablate", "--families", "two-party",
        "--premiums", "0,0.02,0.05", "--shocks", "0.045",
        "--stages", "staked", "--out", str(spec_path),
    ])
    spec = ExperimentSpec.from_json(spec_path.read_text())
    assert spec.kind == "ablate"
    frontier_path = tmp_path / "frontier.json"
    main([
        "run", str(spec_path),
        "--cache", str(tmp_path / "cache"),
        "--frontier-out", str(frontier_path),
        "--expect", flag_frontier.digest,
    ])
    assert FrontierReport.from_json(
        frontier_path.read_text()
    ).digest == flag_frontier.digest
    # warm re-run: same digest expectation passes, hit-rate is printed
    capsys.readouterr()
    report_path = tmp_path / "report.json"
    main([
        "run", str(spec_path),
        "--cache", str(tmp_path / "cache"),
        "--out", str(report_path),
        "--expect", flag_frontier.digest,
    ])
    out = capsys.readouterr().out
    assert "cache hit-rate 100%" in out
    warm = CampaignReport.from_json(report_path.read_text())
    assert warm.cache_hits == warm.scenarios > 0
    with pytest.raises(SystemExit, match="digest mismatch"):
        main(["run", str(spec_path), "--expect", "0" * 64])


def test_cli_unified_merge_is_kind_aware(tmp_path, capsys):
    from repro.cli import main

    reference = reduce_frontier(CampaignRunner(grid_matrix()).run())
    for i in (1, 2):
        main([
            "ablate", "--families", "two-party",
            "--premiums", "0,0.02,0.05", "--shocks", "0.045",
            "--stages", "staked", "--shard", f"{i}/2",
            "--out", str(tmp_path / f"s{i}.json"),
        ])
    capsys.readouterr()
    main([
        "merge", str(tmp_path / "s1.json"), str(tmp_path / "s2.json"),
        "--frontier-out", str(tmp_path / "merged-frontier.json"),
        "--expect", reference.digest,
    ])
    assert "frontier digest" in capsys.readouterr().out
    merged = FrontierReport.from_json(
        (tmp_path / "merged-frontier.json").read_text()
    )
    assert merged.digest == reference.digest
    # a reduced artifact does not merge: the error says what does
    with pytest.raises(SystemExit, match="reduced artifacts"):
        main(["merge", str(tmp_path / "merged-frontier.json")])
    # a partial merge (shards that split a frontier cell) still writes
    # the recombined campaign report; only the reduction is deferred
    capsys.readouterr()
    main([
        "merge", str(tmp_path / "s1.json"),
        "--out", str(tmp_path / "partial.json"),
    ])
    out = capsys.readouterr().out
    assert "frontier reduction needs full coverage" in out
    partial = CampaignReport.from_json((tmp_path / "partial.json").read_text())
    assert not partial.complete
    with pytest.raises(SystemExit, match="full coverage"):
        main([
            "merge", str(tmp_path / "s1.json"),
            "--frontier-out", str(tmp_path / "nope.json"),
        ])


def test_malformed_spec_fields_fail_cleanly(tmp_path):
    # a hand-edited spec with an invalid shard must surface as a clean
    # ExperimentError (and a clean CLI message), not a raw traceback
    from repro.cli import main

    data = json.loads(ablate_spec(**GRID).to_json())
    data["shard"] = [3, 2]
    with pytest.raises(ExperimentError, match="malformed experiment spec"):
        ExperimentSpec.from_json(json.dumps(data))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(data))
    with pytest.raises(SystemExit, match="malformed experiment spec"):
        main(["run", str(bad)])


def test_partial_selections_bypass_the_cache(tmp_path):
    cache = ResultCache(tmp_path / "store")
    Experiment(ablate_spec(**GRID), cache=cache).run()
    sharded = Experiment(ablate_spec(shard=(1, 2), **GRID), cache=cache).run()
    # shard boundaries split blocks, and split blocks never consult the
    # store; only fully-covered blocks may hit
    assert sharded.campaign.run_digest  # ran clean
    assert sharded.cache_hits <= sharded.campaign.scenarios
    warm_shard = Experiment(
        ablate_spec(shard=(1, 2), **GRID), cache=cache
    ).run()
    assert warm_shard.campaign.run_digest == sharded.campaign.run_digest
