"""Tests for the trace renderers and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute
from repro.sim.trace import render_lanes, render_timeline


@pytest.fixture(scope="module")
def compliant_result():
    instance = HedgedTwoPartySwap().build()
    return execute(instance)


# ----------------------------------------------------------------------
# trace renderers
# ----------------------------------------------------------------------
def test_lanes_have_one_column_per_chain(compliant_result):
    text = render_lanes(compliant_result)
    header = text.splitlines()[0]
    assert "apricot" in header and "banana" in header


def test_lanes_show_figure1_sequence(compliant_result):
    text = render_lanes(compliant_result)
    lines = text.splitlines()
    order = [
        next(i for i, l in enumerate(lines) if "premium 3 in" in l),
        next(i for i, l in enumerate(lines) if "premium 1 in" in l),
        next(i for i, l in enumerate(lines) if "escrow 100 (Alice)" in l),
        next(i for i, l in enumerate(lines) if "escrow 100 (Bob)" in l),
        next(i for i, l in enumerate(lines) if "redeem -> Alice" in l),
        next(i for i, l in enumerate(lines) if "redeem -> Bob" in l),
    ]
    assert order == sorted(order)  # exactly the Figure 1 ordering


def test_lanes_mark_awarded_premiums():
    instance = HedgedTwoPartySwap().build()
    result = execute(instance, {"Bob": lambda a: halt_at(a, 3)})
    assert "AWARDED" in render_lanes(result)


def test_timeline_shows_height_deltas(compliant_result):
    text = render_timeline(compliant_result)
    assert "+1Δ" in text
    assert text.splitlines()[0].startswith("h=  1")


def test_deployed_events_hidden(compliant_result):
    assert "deployed" not in render_lanes(compliant_result)
    assert "deployed" not in render_timeline(compliant_result)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_two_party(capsys):
    main(["two-party", "--deviate", "Bob@3"])
    out = capsys.readouterr().out
    assert "AWARDED to Alice" in out
    assert "swapped=False" in out


def test_cli_base_two_party(capsys):
    main(["two-party", "--base"])
    out = capsys.readouterr().out
    assert "swapped=True" in out


def test_cli_multi_party_ring(capsys):
    main(["multi-party", "--graph", "ring:3", "--timeline"])
    out = capsys.readouterr().out
    assert "'redeemed'" in out


def test_cli_broker(capsys):
    main(["broker"])
    out = capsys.readouterr().out
    assert "ticket_state='redeemed'" in out and "coin_state='redeemed'" in out


def test_cli_auction_strategies(capsys):
    main(["auction", "--strategy", "publish-loser"])
    out = capsys.readouterr().out
    assert "refunded" in out


def test_cli_sealed_auction(capsys):
    main(["auction", "--sealed"])
    out = capsys.readouterr().out
    assert "completed" in out


def test_cli_bootstrap(capsys):
    main(["bootstrap", "--value", "10000", "--rounds", "2"])
    out = capsys.readouterr().out
    assert "swapped=True" in out


def test_cli_check_two_party(capsys):
    main(["check", "two-party"])
    out = capsys.readouterr().out
    assert "OK" in out


def test_cli_bad_deviation_spec():
    with pytest.raises(SystemExit):
        main(["two-party", "--deviate", "nonsense"])


def test_cli_bad_graph():
    with pytest.raises(SystemExit):
        main(["multi-party", "--graph", "torus:9"])


def test_cli_unknown_deviator_errors():
    with pytest.raises(SystemExit):
        main(["two-party", "--deviate", "Mallory@1"])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["multi-party", "--graph", "complete:3"])
    assert args.graph == "complete:3"
