"""Integration tests: base (§8.1) and hedged (§8.2) broker protocols."""

import pytest

from repro.core.hedged_broker import (
    HedgedBrokerDeal,
    broker_premium_tables,
    extract_broker_outcome,
    multi_round_trading_premiums,
)
from repro.parties.strategies import halt_at, skip_methods
from repro.protocols.base_broker import BaseBrokerDeal, BrokerSpec
from repro.protocols.instance import execute

SPEC = BrokerSpec()


def run_base(deviations=None):
    instance = BaseBrokerDeal().build()
    result = execute(instance, deviations or {})
    return instance, result, extract_broker_outcome(instance, result)


def run_hedged(deviations=None, premium=1, optimize=True):
    instance = HedgedBrokerDeal(premium=premium, optimize=optimize).build()
    result = execute(instance, deviations or {})
    return instance, result, extract_broker_outcome(instance, result)


# ----------------------------------------------------------------------
# base protocol
# ----------------------------------------------------------------------
def test_base_compliant_deal_completes():
    _, result, out = run_base()
    assert out.completed
    assert out.coins_delta == {"Alice": 1, "Bob": 100, "Carol": -101}
    assert out.tickets_delta == {"Alice": 0, "Bob": -1, "Carol": 1}
    assert not result.reverted()


def test_base_broker_keeps_markup():
    _, _, out = run_base()
    assert out.coins_delta[SPEC.broker] == SPEC.markup


def test_base_bob_omits_escrow_deal_dies_safely():
    _, _, out = run_base({"Bob": lambda a: halt_at(a, 0)})
    assert not out.completed
    assert out.coins_delta["Carol"] == 0
    assert out.tickets_delta["Bob"] == 0


def test_base_alice_omits_trades_assets_refund():
    _, _, out = run_base({"Alice": lambda a: halt_at(a, 1)})
    assert not out.completed
    assert out.tickets_delta["Bob"] == 0
    assert out.coins_delta["Carol"] == 0


def test_base_withholding_protects_escrowers():
    """Carol withholds her key: nothing can be redeemed, assets refund."""
    _, _, out = run_base({"Carol": lambda a: halt_at(a, 2)})
    assert not out.completed
    assert out.tickets_delta["Bob"] == 0
    assert out.coins_delta["Carol"] == 0


# ----------------------------------------------------------------------
# premium tables (§8.2 amounts)
# ----------------------------------------------------------------------
def test_premium_tables_optimized():
    tables = broker_premium_tables(SPEC, 1, optimize=True)
    assert tables["trading"] == {("Alice", "Bob"): 2, ("Alice", "Carol"): 2}
    assert tables["escrow"] == {("Bob", "Alice"): 4, ("Carol", "Alice"): 4}


def test_premium_tables_unoptimized_larger():
    opt = broker_premium_tables(SPEC, 1, optimize=True)
    raw = broker_premium_tables(SPEC, 1, optimize=False)
    assert raw["trading"][("Alice", "Bob")] > opt["trading"][("Alice", "Bob")]
    assert raw["escrow"][("Bob", "Alice")] > opt["escrow"][("Bob", "Alice")]


def test_multi_round_recurrence():
    """§8.2: E(v,w) = T_1(w); T_k(v,w) = T_{k+1}(w); T_r(v,w) = R_w(w)."""
    rounds = [[("A", "M")], [("M", "C")]]  # two trading rounds via middleman M
    escrow_arcs = [("B", "A")]
    origination = {"M": 3, "C": 5, "A": 2, "B": 4}
    tables = multi_round_trading_premiums(rounds, escrow_arcs, origination)
    assert tables["T_2"] == {("M", "C"): 5}  # last round: R_C(C)
    assert tables["T_1"] == {("A", "M"): 5}  # covers M's next-round premiums
    assert tables["E"] == {("B", "A"): 5}  # covers A's round-1 premiums


def test_multi_round_single_round_matches_paper_shape():
    rounds = [[("A", "B"), ("A", "C")]]
    tables = multi_round_trading_premiums(rounds, [("B", "A"), ("C", "A")], {"B": 2, "C": 2})
    assert tables["T_1"] == {("A", "B"): 2, ("A", "C"): 2}
    assert tables["E"] == {("B", "A"): 4, ("C", "A"): 4}


# ----------------------------------------------------------------------
# hedged protocol
# ----------------------------------------------------------------------
def test_hedged_compliant_completes_with_zero_premium_flow():
    _, result, out = run_hedged()
    assert out.completed
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()


def test_hedged_unoptimized_also_completes():
    _, result, out = run_hedged(optimize=False)
    assert out.completed
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()


def test_hedged_bob_omits_b1():
    """§8.2: 'If Bob omits B1 ... Bob pays a premium to Carol and to Alice.'"""
    _, _, out = run_hedged({"Bob": lambda a: skip_methods(a, "escrow_asset")})
    assert not out.completed
    assert out.premium_net["Bob"] < 0
    assert out.premium_net["Carol"] >= 1  # her coins sat locked
    assert out.premium_net["Alice"] >= 0  # reimbursed via E(B,A)


def test_hedged_bob_omits_b2():
    """§8.2: 'If Bob completes B1 but omits B2 ... he pays a premium to
    Carol' (his withheld key leaves her coins locked)."""
    _, _, out = run_hedged({"Bob": lambda a: halt_at(a, 7)})
    assert not out.completed
    assert out.premium_net["Bob"] < 0
    assert out.premium_net["Carol"] >= 1
    assert out.premium_net["Alice"] >= 0


def test_hedged_alice_omits_trades():
    """Alice walks before trading: both escrowers are compensated."""
    _, _, out = run_hedged({"Alice": lambda a: halt_at(a, 6)})
    assert not out.completed
    assert out.premium_net["Alice"] < 0
    assert out.premium_net["Bob"] >= 1
    assert out.premium_net["Carol"] >= 1


def test_hedged_alice_omits_a3():
    """Alice trades but never releases her hashkey: escrowers still whole."""
    _, _, out = run_hedged({"Alice": lambda a: halt_at(a, 7)})
    assert not out.completed
    for party in ("Bob", "Carol"):
        assert out.premium_net[party] >= 1
    assert out.tickets_delta["Bob"] == 0
    assert out.coins_delta["Carol"] == 0


def test_hedged_carol_omits_escrow():
    _, _, out = run_hedged({"Carol": lambda a: skip_methods(a, "escrow_asset")})
    assert not out.completed
    assert out.premium_net["Carol"] < 0
    assert out.premium_net["Bob"] >= 1  # his tickets sat locked
    assert out.premium_net["Alice"] >= 0


def test_hedged_premium_phase_sore_loser_is_minor():
    """A phase-2 walkout kills the deal with only refunds (Lemma 5 analog)."""
    _, _, out = run_hedged({"Bob": lambda a: halt_at(a, 1)})
    assert not out.completed
    assert out.ticket_state == "absent" and out.coin_state == "absent"
    assert out.premium_net["Alice"] >= 0
    assert out.premium_net["Carol"] >= 0


def test_hedged_full_halt_sweep_bounds():
    instance = HedgedBrokerDeal(premium=1).build()
    for who in ("Alice", "Bob", "Carol"):
        for rnd in range(instance.horizon):
            _, _, out = run_hedged({who: lambda a, r=rnd: halt_at(a, r)})
            for party, side in (("Bob", "ticket"), ("Carol", "coin")):
                if party == who:
                    continue
                state = out.ticket_state if side == "ticket" else out.coin_state
                need = out.premium if (state == "refunded" and not out.completed) else 0
                assert out.premium_net[party] >= need, f"{who}@{rnd} hurt {party}"
            if who != "Alice":
                assert out.premium_net["Alice"] >= 0, f"{who}@{rnd} hurt Alice"


def test_hedged_contract_activation_gates_escrow():
    instance = HedgedBrokerDeal(premium=1).build()
    ticket = instance.contract("ticket")
    assert not ticket.contract_activated  # nothing deposited yet
