"""Unit tests for the Blockchain: deployment, execution, revert, events."""

import pytest

from repro.chain.block import Transaction
from repro.chain.blockchain import Blockchain, CallContext, ChainView
from repro.contracts.base import Contract
from repro.errors import ChainError, ContractError


class Counter(Contract):
    """Minimal contract for runtime tests."""

    kind = "counter"

    def __init__(self):
        super().__init__()
        self.value = 0
        self.ticks = 0

    def bump(self, ctx: CallContext, by: int = 1) -> None:
        self.require(by > 0, "must bump by a positive amount")
        self.value += by
        self.emit("bumped", by=by, sender=ctx.sender)

    def pay_and_fail(self, ctx: CallContext) -> None:
        self.pull(self._chain().native, ctx.sender, 5)
        raise ContractError("deliberate failure after transfer")

    def on_tick(self, height: int) -> None:
        self.ticks += 1


@pytest.fixture
def deployed(chain):
    chain.ledger.mint(chain.native, "alice", 100)
    address = chain.deploy(Counter())
    return chain, address


def _tx(chain, address, method, **args):
    return Transaction(chain=chain.name, sender="alice", contract=address, method=method, args=args)


def test_deploy_assigns_address(deployed):
    chain, address = deployed
    assert address.startswith("counter-")
    assert isinstance(chain.contract_at(address), Counter)


def test_deploy_emits_event(deployed):
    chain, address = deployed
    assert any(e.name == "deployed" and e.contract == address for e in chain.events)


def test_unknown_contract_raises(deployed):
    chain, _ = deployed
    with pytest.raises(ChainError):
        chain.contract_at("nope-1")


def test_execute_ok(deployed):
    chain, address = deployed
    tx = chain.execute(_tx(chain, address, "bump", by=3))
    assert tx.receipt.ok
    assert chain.contract_at(address).value == 3


def test_execute_revert_records_error(deployed):
    chain, address = deployed
    tx = chain.execute(_tx(chain, address, "bump", by=0))
    assert tx.receipt.status == "reverted"
    assert "positive" in tx.receipt.error
    assert chain.contract_at(address).value == 0


def test_revert_rolls_back_ledger(deployed):
    chain, address = deployed
    tx = chain.execute(_tx(chain, address, "pay_and_fail"))
    assert tx.receipt.status == "reverted"
    assert chain.ledger.balance(chain.native, "alice") == 100
    assert chain.ledger.balance(chain.native, address) == 0


def test_revert_drops_events(deployed):
    chain, address = deployed
    chain.execute(_tx(chain, address, "bump", by=0))
    assert not chain.events_named("bumped")


def test_unknown_method_reverts(deployed):
    chain, address = deployed
    tx = chain.execute(_tx(chain, address, "no_such_method"))
    assert tx.receipt.status == "reverted"


def test_non_callable_attribute_rejected_as_missing_method(deployed):
    # Regression: "calling" a state field used to crash into the generic
    # TypeError path and report malformed calldata; it must read as a
    # missing method, with state and events untouched.
    chain, address = deployed
    tx = chain.execute(_tx(chain, address, "value"))
    assert tx.receipt.status == "reverted"
    assert "no public method 'value'" in tx.receipt.error
    assert "malformed arguments" not in tx.receipt.error
    assert chain.contract_at(address).value == 0


def test_private_method_not_callable(deployed):
    chain, address = deployed
    tx = chain.execute(_tx(chain, address, "_chain"))
    assert tx.receipt.status == "reverted"


def test_advance_bumps_height_and_ticks(deployed):
    chain, address = deployed
    assert chain.height == 0
    chain.advance()
    chain.advance()
    assert chain.height == 2
    assert chain.contract_at(address).ticks == 2


def test_advance_executes_transactions_at_new_height(deployed):
    chain, address = deployed
    executed = chain.advance([_tx(chain, address, "bump")])
    assert executed[0].receipt.height == 1


def test_wrong_chain_routing_raises(deployed):
    chain, address = deployed
    tx = _tx(chain, address, "bump")
    tx.chain = "elsewhere"
    with pytest.raises(ChainError):
        chain.execute(tx)


def test_double_deploy_rejected(deployed):
    chain, address = deployed
    contract = chain.contract_at(address)
    with pytest.raises(Exception):
        contract.install(chain, "counter-9")


def test_chain_view_is_queryable(deployed):
    chain, address = deployed
    chain.advance([_tx(chain, address, "bump", by=7)])
    view = ChainView(chain)
    assert view.height == 1
    assert view.contract(address).value == 7
    assert view.balance(chain.native, "alice") == 100
    assert any(e.name == "bumped" for e in view.events())


def test_events_named_filters(deployed):
    chain, address = deployed
    chain.advance([_tx(chain, address, "bump"), _tx(chain, address, "bump")])
    assert len(chain.events_named("bumped")) == 2
