"""Hypothesis property tests on the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.assets import Asset
from repro.chain.ledger import Ledger
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import compliant_payoff_acceptable, extract_two_party_outcome
from repro.core.premiums import (
    escrow_premium_amounts,
    leader_redemption_total,
    redemption_premium_amount,
)
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import SignedPath
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.graph.digraph import SwapGraph
from repro.graph.feedback import is_feedback_vertex_set, minimum_feedback_vertex_set
from repro.parties.strategies import Deviant
from repro.protocols.instance import execute

# ----------------------------------------------------------------------
# ledger conservation under arbitrary operation sequences
# ----------------------------------------------------------------------
ACCOUNTS = ["alice", "bob", "carol", "dave"]
ASSET = Asset("chain", "token")

ops = st.lists(
    st.tuples(
        st.sampled_from(["transfer", "begin", "commit", "rollback"]),
        st.sampled_from(ACCOUNTS),
        st.sampled_from(ACCOUNTS),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=40,
)


@given(ops)
def test_ledger_conserves_supply_under_any_ops(op_list):
    ledger = Ledger("chain")
    for account in ACCOUNTS:
        ledger.mint(ASSET, account, 100)
    depth = 0
    for op, src, dst, amount in op_list:
        try:
            if op == "transfer":
                ledger.transfer(ASSET, src, dst, amount)
            elif op == "begin":
                ledger.begin()
                depth += 1
            elif op == "commit" and depth:
                ledger.commit()
                depth -= 1
            elif op == "rollback" and depth:
                ledger.rollback()
                depth -= 1
        except Exception:
            pass  # insufficient funds etc. — balance must still be conserved
    assert ledger.total_supply(ASSET) == 400
    assert all(
        ledger.balance(ASSET, account) >= 0 for account in ACCOUNTS
    )


# ----------------------------------------------------------------------
# random strongly-connected digraphs: Equations 1 and 2 invariants
# ----------------------------------------------------------------------
@st.composite
def strongly_connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    parties = [f"P{i}" for i in range(n)]
    # start from a ring (guarantees strong connectivity), add random arcs
    arcs = {(parties[i], parties[(i + 1) % n]) for i in range(n)}
    extra = draw(
        st.sets(
            st.tuples(st.sampled_from(parties), st.sampled_from(parties)).filter(
                lambda a: a[0] != a[1]
            ),
            max_size=n * 2,
        )
    )
    arcs |= extra
    return SwapGraph.build(parties, sorted(arcs))


@given(strongly_connected_graphs(), st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_eq1_amounts_at_least_p_and_scale(graph, p):
    leaders = minimum_feedback_vertex_set(graph)
    for leader in leaders:
        for u in graph.in_neighbors(leader):
            amount = redemption_premium_amount(graph, (leader,), u, p)
            assert amount >= p
            assert amount % p == 0
            assert amount == p * redemption_premium_amount(graph, (leader,), u, 1)


@given(strongly_connected_graphs())
@settings(max_examples=60, deadline=None)
def test_eq2_follower_premiums_cover_outgoing(graph):
    """E(u,v) for follower v equals the sum of v's outgoing premiums —
    the passthrough invariant behind Lemma 3."""
    leaders = minimum_feedback_vertex_set(graph)
    premiums = escrow_premium_amounts(graph, leaders, 1)
    leader_set = set(leaders)
    for (u, v), amount in premiums.items():
        if v in leader_set:
            assert amount == leader_redemption_total(graph, v, 1)
        else:
            outgoing = sum(premiums[arc] for arc in graph.out_arcs(v))
            assert amount == outgoing


@given(strongly_connected_graphs())
@settings(max_examples=40, deadline=None)
def test_minimum_fvs_is_valid_and_minimal(graph):
    fvs = minimum_feedback_vertex_set(graph)
    assert is_feedback_vertex_set(graph, fvs)
    if fvs:
        # no strict subset of the found FVS works (minimality witness)
        for drop in fvs:
            smaller = tuple(x for x in fvs if x != drop)
            assert not is_feedback_vertex_set(graph, smaller)


# ----------------------------------------------------------------------
# signed path chains survive arbitrary extension orders
# ----------------------------------------------------------------------
@given(st.lists(st.sampled_from(["B", "C", "D", "E"]), unique=True, max_size=4))
@settings(max_examples=40)
def test_signed_path_chain_verifies_for_any_extension_order(extenders):
    registry = KeyRegistry()
    keys = {}
    for name in ["A", "B", "C", "D", "E"]:
        keys[name] = KeyPair.from_seed(f"k-{name}", owner=name)
        registry.register(keys[name])
    public_of = {name: kp.public for name, kp in keys.items()}
    chain = SignedPath.create("payload", keys["A"], "A")
    for name in extenders:
        chain = chain.extend(keys[name], name)
    assert chain.verify(registry, public_of)
    assert chain.length == 1 + len(extenders)
    assert chain.path[-1] == "A"


# ----------------------------------------------------------------------
# hedged two-party swap: Definition 1 under random deviation profiles
# ----------------------------------------------------------------------
deviation_profiles = st.fixed_dictionaries(
    {},
    optional={
        "Alice": st.tuples(
            st.integers(min_value=0, max_value=7),
            st.sets(
                st.sampled_from(["deposit_premium", "escrow_principal", "redeem"]),
                max_size=2,
            ),
        ),
        "Bob": st.tuples(
            st.integers(min_value=0, max_value=7),
            st.sets(
                st.sampled_from(["deposit_premium", "escrow_principal", "redeem"]),
                max_size=2,
            ),
        ),
    },
)


@given(deviation_profiles)
@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_two_party_definition1_under_random_deviations(profile):
    from repro.parties.strategies import SkipRule

    spec = HedgedTwoPartySpec()
    instance = HedgedTwoPartySwap(spec).build()
    deviations = {}
    for name, (halt, skips) in profile.items():
        rules = tuple(SkipRule(method=m) for m in skips)
        deviations[name] = (
            lambda actor, h=halt, r=rules: Deviant(actor, halt_round=h, skip_rules=r)
        )
    result = execute(instance, deviations)
    outcome = extract_two_party_outcome(instance, result)
    for party in ("Alice", "Bob"):
        if party not in profile:
            assert compliant_payoff_acceptable(outcome, party, spec)
    # liveness/no-stuck-escrow holds in every scenario
    for chain in instance.world.chains.values():
        for (asset, account), balance in chain.ledger.snapshot().items():
            assert not (account in chain.contracts and balance != 0)


# ----------------------------------------------------------------------
# secrets and hashlocks
# ----------------------------------------------------------------------
@given(st.binary(min_size=1, max_size=64))
def test_hashlock_roundtrip_any_preimage(preimage):
    secret = Secret(preimage)
    assert secret.hashlock.matches(preimage)
    assert not secret.hashlock.matches(preimage + b"\x00")
