"""Unit tests for the auction contracts (contract-level state machines)."""

import pytest

from repro.chain.block import Transaction
from repro.contracts.auction import (
    AuctionDeadlines,
    CoinAuctionContract,
    TicketAuctionContract,
)
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey
from repro.crypto.keys import KeyPair

ALICE = KeyPair.from_seed("alice-key", owner="Alice")
BOB = KeyPair.from_seed("bob-key", owner="Bob")
SECRETS = {"Bob": Secret.from_text("des-bob"), "Carol": Secret.from_text("des-carol")}


@pytest.fixture
def coin(chain):
    chain.registry.register(ALICE)
    chain.registry.register(BOB)
    coin_asset = chain.asset("coin")
    chain.ledger.mint(coin_asset, "Bob", 500)
    chain.ledger.mint(coin_asset, "Carol", 500)
    chain.ledger.mint(chain.native, "Alice", 10)
    contract = CoinAuctionContract(
        auctioneer="Alice",
        bidders=("Bob", "Carol"),
        hashlocks={b: s.hashlock for b, s in SECRETS.items()},
        public_of={"Alice": ALICE.public, "Bob": BOB.public},
        deadlines=AuctionDeadlines(),
        coin_asset=coin_asset,
        premium=2,
    )
    address = chain.deploy(contract)
    return chain, contract, address


def _call(chain, address, sender, method, **args):
    return chain.execute(
        Transaction(chain=chain.name, sender=sender, contract=address, method=method, args=args)
    )


def test_bid_records_and_pulls(coin):
    chain, contract, address = coin
    chain.advance()
    assert _call(chain, address, "Bob", "bid", amount=100).receipt.ok
    assert contract.bids == {"Bob": 100}
    assert chain.ledger.balance(contract.coin_asset, address) == 100


def test_non_bidder_rejected(coin):
    chain, contract, address = coin
    chain.advance()
    tx = _call(chain, address, "Mallory", "bid", amount=10)
    assert tx.receipt.status == "reverted"


def test_double_bid_rejected(coin):
    chain, contract, address = coin
    chain.advance()
    _call(chain, address, "Bob", "bid", amount=100)
    assert _call(chain, address, "Bob", "bid", amount=120).receipt.status == "reverted"


def test_zero_bid_rejected(coin):
    chain, contract, address = coin
    chain.advance()
    assert _call(chain, address, "Bob", "bid", amount=0).receipt.status == "reverted"


def test_bid_after_deadline_rejected(coin):
    chain, contract, address = coin
    for _ in range(3):  # height 3 > bidding deadline 2
        chain.advance()
    assert _call(chain, address, "Bob", "bid", amount=100).receipt.status == "reverted"


def test_high_bidder_tie_break(coin):
    chain, contract, address = coin
    chain.advance()
    _call(chain, address, "Bob", "bid", amount=100)
    _call(chain, address, "Carol", "bid", amount=100)
    assert contract.high_bidder == "Carol"  # lexicographic on equal amounts
    contract.bids["Bob"] = 101
    assert contract.high_bidder == "Bob"


def test_endow_only_auctioneer(coin):
    chain, contract, address = coin
    chain.advance()
    assert _call(chain, address, "Bob", "endow_premium").receipt.status == "reverted"
    assert _call(chain, address, "Alice", "endow_premium").receipt.ok
    assert contract.endowment == 4  # 2 bidders x p=2


def test_hashkey_must_originate_with_auctioneer(coin):
    chain, contract, address = coin
    chain.advance()
    forged = HashKey.originate(SECRETS["Bob"], BOB, "Bob")
    tx = _call(chain, address, "Bob", "present_hashkey", hashkey=forged)
    assert tx.receipt.status == "reverted"
    assert "originate" in tx.receipt.error


def test_hashkey_for_unknown_lock_rejected(coin):
    chain, contract, address = coin
    chain.advance()
    other = HashKey.originate(Secret.from_text("stranger"), ALICE, "Alice")
    tx = _call(chain, address, "Alice", "present_hashkey", hashkey=other)
    assert tx.receipt.status == "reverted"
    assert "matches no bidder" in tx.receipt.error


def test_commit_with_winner_key_completes(coin):
    chain, contract, address = coin
    chain.advance()
    _call(chain, address, "Bob", "bid", amount=100)
    _call(chain, address, "Carol", "bid", amount=90)
    _call(chain, address, "Alice", "endow_premium")
    chain.advance()
    key = HashKey.originate(SECRETS["Bob"], ALICE, "Alice")
    assert _call(chain, address, "Alice", "present_hashkey", hashkey=key).receipt.ok
    for _ in range(6):
        chain.advance()
    assert contract.outcome == "completed"
    assert chain.ledger.balance(contract.coin_asset, "Alice") == 100
    assert chain.ledger.balance(contract.coin_asset, "Carol") == 500  # refunded
    assert chain.ledger.balance(chain.native, "Alice") == 10  # endowment back


def test_commit_with_no_keys_refunds_and_compensates(coin):
    chain, contract, address = coin
    chain.advance()
    _call(chain, address, "Bob", "bid", amount=100)
    _call(chain, address, "Carol", "bid", amount=90)
    _call(chain, address, "Alice", "endow_premium")
    for _ in range(7):
        chain.advance()
    assert contract.outcome == "refunded"
    assert chain.ledger.balance(contract.coin_asset, "Bob") == 500
    assert chain.ledger.balance(chain.native, "Bob") == 2
    assert chain.ledger.balance(chain.native, "Carol") == 2
    assert chain.ledger.balance(chain.native, "Alice") == 6  # lost 4


def test_ticket_contract_requires_escrow_before_settle(chain):
    chain.registry.register(ALICE)
    ticket_asset = chain.asset("ticket")
    chain.ledger.mint(ticket_asset, "Alice", 1)
    contract = TicketAuctionContract(
        auctioneer="Alice",
        bidders=("Bob", "Carol"),
        hashlocks={b: s.hashlock for b, s in SECRETS.items()},
        public_of={"Alice": ALICE.public},
        deadlines=AuctionDeadlines(),
        ticket_asset=ticket_asset,
        tickets=1,
    )
    address = chain.deploy(contract)
    for _ in range(8):
        chain.advance()
    assert not contract.settled  # nothing escrowed -> nothing to settle


def test_ticket_contract_two_keys_refund(chain):
    chain.registry.register(ALICE)
    ticket_asset = chain.asset("ticket")
    chain.ledger.mint(ticket_asset, "Alice", 1)
    contract = TicketAuctionContract(
        auctioneer="Alice",
        bidders=("Bob", "Carol"),
        hashlocks={b: s.hashlock for b, s in SECRETS.items()},
        public_of={"Alice": ALICE.public},
        deadlines=AuctionDeadlines(),
        ticket_asset=ticket_asset,
        tickets=1,
    )
    address = chain.deploy(contract)
    chain.advance()
    _call(chain, address, "Alice", "escrow_tickets")
    chain.advance()
    for bidder in ("Bob", "Carol"):
        key = HashKey.originate(SECRETS[bidder], ALICE, "Alice")
        assert _call(chain, address, "Alice", "present_hashkey", hashkey=key).receipt.ok
    for _ in range(6):
        chain.advance()
    assert contract.outcome == "refunded"
    assert chain.ledger.balance(ticket_asset, "Alice") == 1
