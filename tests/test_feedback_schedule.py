"""Unit tests for feedback vertex sets and the phase schedule."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import complete_graph, figure3_graph, ring_graph
from repro.graph.feedback import is_feedback_vertex_set, minimum_feedback_vertex_set
from repro.graph.schedule import MultiPartySchedule


# ----------------------------------------------------------------------
# feedback vertex sets
# ----------------------------------------------------------------------
def test_figure3_fvs():
    g = figure3_graph()
    assert is_feedback_vertex_set(g, ("A",))
    assert is_feedback_vertex_set(g, ("B",))
    assert not is_feedback_vertex_set(g, ("C",))  # A<->B cycle survives
    assert is_feedback_vertex_set(g, ("A", "B", "C"))


def test_empty_set_only_for_acyclic():
    g = figure3_graph()
    assert not is_feedback_vertex_set(g, ())


def test_minimum_fvs_figure3():
    assert minimum_feedback_vertex_set(figure3_graph()) == ("A",)


def test_minimum_fvs_ring():
    assert minimum_feedback_vertex_set(ring_graph(6)) == ("P0",)


def test_minimum_fvs_complete():
    # K_n needs n-1 vertices removed to break all 2-cycles
    assert len(minimum_feedback_vertex_set(complete_graph(4))) == 3


def test_greedy_fallback_is_valid():
    g = complete_graph(5)
    greedy = minimum_feedback_vertex_set(g, exact_limit=0)
    assert is_feedback_vertex_set(g, greedy)


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------
@pytest.fixture
def fig3_schedule():
    return MultiPartySchedule(figure3_graph(), ("A",))


def test_phase_boundaries(fig3_schedule):
    s = fig3_schedule
    assert (s.p1_start, s.p2_start, s.p3_start, s.p4_start) == (0, 3, 6, 9)
    assert s.end == 12
    assert s.horizon == 13


def test_forward_deadlines_follow_depths(fig3_schedule):
    s = fig3_schedule
    assert s.escrow_premium_deadline(("A", "B")) == 1
    assert s.escrow_premium_deadline(("B", "A")) == 2
    assert s.escrow_premium_deadline(("B", "C")) == 2
    assert s.escrow_premium_deadline(("C", "A")) == 3
    assert s.principal_deadline(("A", "B")) == 7
    assert s.principal_deadline(("C", "A")) == 9


def test_backward_deadlines_follow_path_length(fig3_schedule):
    s = fig3_schedule
    assert s.redemption_premium_deadline(1) == 4
    assert s.redemption_premium_deadline(3) == 6
    assert s.hashkey_deadline(1) == 10
    assert s.hashkey_deadline(3) == 12
    assert s.activation_deadline == s.p3_start


def test_base_schedule(fig3_schedule):
    s = fig3_schedule
    # diameter 2, forward_len 3 -> M = 3 (discretization note in DESIGN.md)
    assert s.base_m == 3
    assert s.base_principal_deadline(("A", "B")) == 1
    assert s.base_hashkey_deadline(2) == 5
    assert s.base_end == 6
    assert s.base_horizon == 7


def test_schedule_rejects_non_fvs_leaders():
    with pytest.raises(GraphError):
        MultiPartySchedule(figure3_graph(), ("C",))


def test_schedule_rejects_empty_leaders():
    with pytest.raises(GraphError):
        MultiPartySchedule(figure3_graph(), ())


def test_schedule_rejects_foreign_leaders():
    with pytest.raises(GraphError):
        MultiPartySchedule(figure3_graph(), ("Z",))


def test_ring_schedule_lengths():
    s = MultiPartySchedule(ring_graph(4), ("P0",))
    assert s.forward_len == 4  # depths 0..3
    assert s.backward_len == 4
    assert s.end == 16
