"""The premium-quoting service: requests, quotes, schedules, the ladder.

The digest-invariance suite here is the quote layer's instance of the
repo-wide standing invariant: traced and untraced runs — and every tier
that answers the same question — produce byte-identical quote digests.
"""

import json

import pytest

from repro.campaign.ablation.grid import closed_form_pi_star, parse_graph_family
from repro.campaign.ablation.refine import DEFAULT_TOL
from repro.campaign.ablation.rowstore import (
    load_row,
    row_descriptor,
    row_key,
    store_row,
)
from repro.campaign.cache import ResultCache, shared_cache
from repro.campaign.experiment import Experiment, refine_spec
from repro.core.premiums import escrow_premium_amounts
from repro.graph.digraph import ring_graph
from repro.quote import (
    Quote,
    QuoteEngine,
    QuoteError,
    QuoteRequest,
    batch_cells,
    batch_digest,
    deposit_schedule,
    quote_batch,
    quote_for,
)


# ----------------------------------------------------------------------
# QuoteRequest: validation, identity, serialization
# ----------------------------------------------------------------------
class TestQuoteRequest:
    def test_exactly_one_shape(self):
        with pytest.raises(QuoteError):
            QuoteRequest()
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", graph="ring:4")

    def test_unknown_family_and_graph(self):
        with pytest.raises(QuoteError):
            QuoteRequest(family="ring:4")  # graphs go through graph=
        with pytest.raises(QuoteError):
            QuoteRequest(graph="two-party")
        with pytest.raises(QuoteError):
            QuoteRequest(graph="ring:1")

    def test_coalition_rules(self):
        QuoteRequest(family="multi-party", coalition="P1+P2")
        with pytest.raises(QuoteError):
            QuoteRequest(graph="ring:4", coalition="P1+P2")
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", coalition="P1+P2")

    def test_stage_and_assumption_bounds(self):
        QuoteRequest(family="two-party", stage="round:3")
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", stage="all")
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", stage="mid-flight")
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", shock=0.0)
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", shock=1.0)
        with pytest.raises(QuoteError):
            QuoteRequest(family="two-party", tol=0.0)

    def test_ring3_normalizes_to_multi_party(self):
        assert QuoteRequest(graph="ring:3").cell_family == "multi-party"
        assert QuoteRequest(graph="ring:4").cell_family == "ring:4"
        assert QuoteRequest(family="broker").cell_family == "broker"

    def test_digest_covers_every_field(self):
        base = QuoteRequest(family="two-party")
        variants = [
            QuoteRequest(family="multi-party"),
            QuoteRequest(family="two-party", shock=0.06),
            QuoteRequest(family="two-party", stage="pre-stake"),
            QuoteRequest(family="two-party", tol=0.03125),
            QuoteRequest(family="two-party", seed=7),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 1 + len(variants)
        assert base.digest() == QuoteRequest(family="two-party").digest()

    def test_json_round_trip_verifies_digest(self):
        request = QuoteRequest(graph="ring:5", shock=0.06, seed=3)
        again = QuoteRequest.from_json(request.to_json())
        assert again == request
        tampered = json.loads(request.to_json())
        tampered["shock"] = 0.07
        with pytest.raises(QuoteError):
            QuoteRequest.from_json(json.dumps(tampered))


# ----------------------------------------------------------------------
# Quote: premium quantization, digest surface, serialization
# ----------------------------------------------------------------------
class TestQuote:
    def test_premium_is_smallest_clearing_integer(self):
        request = QuoteRequest(family="two-party")
        assert quote_for(request, pi_star=0.045, base=100, provenance="x").premium == 5
        assert quote_for(request, pi_star=0.05, base=100, provenance="x").premium == 5
        assert quote_for(request, pi_star=0.0501, base=100, provenance="x").premium == 6
        assert quote_for(request, pi_star=None, base=100, provenance="x").premium is None

    def test_digest_excludes_tier_and_latency(self):
        request = QuoteRequest(family="two-party")
        fast = quote_for(
            request, pi_star=0.045, base=100, provenance="x", tier=1, latency_ms=0.2
        )
        slow = quote_for(
            request, pi_star=0.045, base=100, provenance="x", tier=3, latency_ms=90.0
        )
        assert fast.digest() == slow.digest()
        assert fast.to_json() != slow.to_json()  # tier/latency still serialized

    def test_digest_covers_the_answer(self):
        request = QuoteRequest(family="two-party")
        one = quote_for(request, pi_star=0.045, base=100, provenance="x")
        other = quote_for(request, pi_star=0.05, base=100, provenance="x")
        assert one.digest() != other.digest()
        assert one.digest() != quote_for(
            request, pi_star=0.045, base=100, provenance="y"
        ).digest()

    def test_json_round_trip_verifies_digest(self):
        engine = QuoteEngine()
        quote = engine.quote(QuoteRequest(family="multi-party"), tiers=(1,))
        again = Quote.from_json(quote.to_json())
        assert again == quote
        assert again.digest() == quote.digest()
        tampered = json.loads(quote.to_json())
        tampered["premium"] = 1
        with pytest.raises(QuoteError):
            Quote.from_json(json.dumps(tampered))


# ----------------------------------------------------------------------
# deposit schedules
# ----------------------------------------------------------------------
class TestDepositSchedule:
    def test_two_party_matches_equation_two(self):
        schedule = deposit_schedule("two-party", 5)
        escrow = {
            entry.arc: entry.amount
            for entry in schedule
            if entry.kind == "escrow"
        }
        assert escrow == escrow_premium_amounts(ring_graph(2), ("P0",), 5)
        redemptions = [e for e in schedule if e.kind == "redemption"]
        assert all(e.depositor == e.path[0] for e in redemptions)

    def test_graph_family_schedule(self):
        graph, leaders = parse_graph_family("ring:5")
        schedule = deposit_schedule("ring:5", 2)
        escrow = {
            entry.arc: entry.amount
            for entry in schedule
            if entry.kind == "escrow"
        }
        assert escrow == escrow_premium_amounts(graph, leaders, 2)

    def test_broker_has_all_three_tables(self):
        schedule = deposit_schedule("broker", 3)
        kinds = {entry.kind for entry in schedule}
        assert kinds == {"trading", "escrow", "redemption"}
        # both escrow arcs carry the full trading total (§8.1)
        escrow = [e.amount for e in schedule if e.kind == "escrow"]
        trading_total = sum(e.amount for e in schedule if e.kind == "trading")
        assert escrow == [trading_total, trading_total]

    def test_auction_flat_per_bidder(self):
        schedule = deposit_schedule("auction", 4)
        assert [entry.amount for entry in schedule] == [4, 4]
        assert {entry.depositor for entry in schedule} == {"Alice"}

    def test_zero_premium_empty_and_errors(self):
        assert deposit_schedule("two-party", 0) == ()
        with pytest.raises(QuoteError):
            deposit_schedule("two-party", -1)
        with pytest.raises(QuoteError):
            deposit_schedule("no-such-family", 3)


# ----------------------------------------------------------------------
# the row store
# ----------------------------------------------------------------------
class TestRowStore:
    def _refined_row(self, **overrides):
        spec = refine_spec(
            families=("two-party",),
            premium_fractions=(0.0, 0.08),
            shock_fractions=(0.045,),
            stages=("staked",),
            engine="kernel",
        )
        report = Experiment(spec).run().refined
        row = report.row("two-party", "staked", 0.045)
        if overrides:
            from dataclasses import replace

            row = replace(row, **overrides)
        return row

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = self._refined_row()
        descriptor = row_descriptor(
            "two-party", "", "staked", 0.045, DEFAULT_TOL, 0
        )
        assert store_row(cache, descriptor, row)
        assert load_row(cache, descriptor) == row
        other = row_descriptor("two-party", "", "staked", 0.06, DEFAULT_TOL, 0)
        assert load_row(cache, other) is None

    def test_unconverged_bracket_is_ineligible(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = self._refined_row(converged=False)
        descriptor = row_descriptor(
            "two-party", "", "staked", 0.045, DEFAULT_TOL, 0
        )
        assert not store_row(cache, descriptor, row)
        assert load_row(cache, descriptor) is None

    def test_undeterred_row_is_a_final_answer(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = self._refined_row(converged=False, pi_hi=None, pi_star=None)
        descriptor = row_descriptor(
            "two-party", "", "staked", 0.045, DEFAULT_TOL, 0
        )
        assert store_row(cache, descriptor, row)
        loaded = load_row(cache, descriptor)
        assert loaded.pi_star is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = self._refined_row()
        descriptor = row_descriptor(
            "two-party", "", "staked", 0.045, DEFAULT_TOL, 0
        )
        store_row(cache, descriptor, row)
        path = tmp_path / f"{row_key(descriptor)}.json"
        path.write_text('{"key": "mismatch", "payload": {}}')
        assert load_row(cache, descriptor) is None

    def test_experiment_run_warms_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = refine_spec(
            families=("two-party",),
            premium_fractions=(0.0, 0.08),
            shock_fractions=(0.045,),
            stages=("staked",),
            engine="kernel",
        )
        Experiment(spec, cache=cache).run()
        # a plain refinement sweep makes the quote a tier-2 hit
        engine = QuoteEngine(cache=cache)
        quote = engine.quote(QuoteRequest(family="two-party"), tiers=(2,))
        assert quote.tier == 2
        assert quote.pi_star is not None

    def test_shared_cache_memoizes_per_root(self, tmp_path):
        first = shared_cache(tmp_path / "store")
        second = shared_cache(tmp_path / "store")
        other = shared_cache(tmp_path / "elsewhere")
        assert first is second
        assert first is not other


# ----------------------------------------------------------------------
# the engine ladder
# ----------------------------------------------------------------------
class TestQuoteEngine:
    def test_tier1_matches_closed_form(self):
        engine = QuoteEngine()
        quote = engine.quote(QuoteRequest(family="two-party"), tiers=(1,))
        assert quote.tier == 1
        assert quote.pi_star == closed_form_pi_star("two-party", 0.045)
        assert quote.premium == 5
        assert quote.schedule  # priced arc by arc
        assert quote.provenance.startswith("closed-form|")

    def test_pre_stake_is_unhedgeable_analytically(self):
        engine = QuoteEngine()
        quote = engine.quote(
            QuoteRequest(family="two-party", stage="pre-stake"), tiers=(1,)
        )
        assert quote.tier == 1
        assert not quote.hedgeable
        assert quote.schedule == ()

    def test_tier2_requires_warm_cache(self):
        engine = QuoteEngine()  # no cache attached
        with pytest.raises(QuoteError):
            engine.quote(QuoteRequest(family="two-party"), tiers=(2,))

    def test_tier3_stores_back_for_tier2(self, tmp_path):
        engine = QuoteEngine(cache=ResultCache(tmp_path))
        request = QuoteRequest(graph="ring:4")
        cold = engine.quote(request)
        warm = engine.quote(request)
        assert (cold.tier, warm.tier) == (3, 2)
        assert cold.digest() == warm.digest()
        assert cold.provenance == warm.provenance
        assert cold.to_json() != warm.to_json()  # tier/latency differ

    def test_unknown_tier_rejected(self):
        engine = QuoteEngine()
        with pytest.raises(QuoteError):
            engine.quote(QuoteRequest(family="two-party"), tiers=(1, 4))

    def test_request_digest_binds_answer_to_question(self):
        engine = QuoteEngine()
        request = QuoteRequest(family="auction", shock=0.06)
        quote = engine.quote(request, tiers=(1,))
        assert quote.request_digest == request.digest()


# ----------------------------------------------------------------------
# digest invariance: repeated, traced, batched
# ----------------------------------------------------------------------
class TestDigestInvariance:
    def test_repeated_quotes_byte_identical(self):
        engine = QuoteEngine()
        request = QuoteRequest(family="multi-party", coalition="P1+P2")
        digests = {engine.quote(request, tiers=(1,)).digest() for _ in range(3)}
        assert len(digests) == 1

    def test_traced_equals_untraced(self, tmp_path):
        from repro.obs import Tracer, TraceWriter

        request = QuoteRequest(graph="ring:4")
        plain = QuoteEngine(cache=ResultCache(tmp_path / "plain")).quote(request)

        tracer = Tracer(TraceWriter(str(tmp_path / "trace.jsonl")))
        traced_engine = QuoteEngine(
            cache=ResultCache(tmp_path / "traced"), tracer=tracer
        )
        traced = traced_engine.quote(request)
        tracer.close()

        assert traced.digest() == plain.digest()
        events = (tmp_path / "trace.jsonl").read_text()
        assert "quote.tier3" in events

    def test_batch_members_match_single_quotes(self, tmp_path):
        requests = [
            QuoteRequest(family="two-party"),
            QuoteRequest(graph="ring:4"),
            QuoteRequest(family="broker", coalition="seller+buyer"),
            QuoteRequest(graph="ring:4"),
        ]
        batch = quote_batch(
            QuoteEngine(cache=ResultCache(tmp_path / "batch")), requests
        )
        singles = [
            QuoteEngine(cache=ResultCache(tmp_path / "single")).quote(r)
            for r in requests
        ]
        assert [q.digest() for q in batch] == [q.digest() for q in singles]
        assert batch_digest(batch) == batch_digest(singles)


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
class TestQuoteBatch:
    def test_results_in_input_order(self):
        engine = QuoteEngine()
        requests = [
            QuoteRequest(family="auction"),
            QuoteRequest(family="two-party"),
            QuoteRequest(family="multi-party"),
        ]
        quotes = quote_batch(engine, requests, tiers=(1,))
        assert [q.family for q in quotes] == ["auction", "two-party", "multi-party"]
        assert [q.request_digest for q in quotes] == [r.digest() for r in requests]

    def test_cells_group_by_family_and_coalition(self):
        requests = [
            QuoteRequest(family="multi-party"),
            QuoteRequest(family="multi-party", coalition="P1+P2"),
            QuoteRequest(graph="ring:3"),  # same cell as multi-party pivot
            QuoteRequest(family="two-party"),
        ]
        cells = batch_cells(requests)
        assert [cell for cell, _ in cells] == [
            ("multi-party", ""),
            ("multi-party", "P1+P2"),
            ("two-party", ""),
        ]
        assert dict(cells)[("multi-party", "")] == [0, 2]

    def test_duplicate_measurement_promotes_within_batch(self, tmp_path):
        engine = QuoteEngine(cache=ResultCache(tmp_path))
        requests = [QuoteRequest(graph="ring:4"), QuoteRequest(graph="ring:4")]
        quotes = quote_batch(engine, requests)
        assert [q.tier for q in quotes] == [3, 2]
        assert quotes[0].digest() == quotes[1].digest()

    def test_progress_callback_sees_every_quote(self):
        seen = []
        quote_batch(
            QuoteEngine(),
            [QuoteRequest(family="two-party"), QuoteRequest(family="broker")],
            tiers=(1,),
            progress=lambda update: seen.append((update.done, update.total)),
        )
        assert seen[-1] == (2, 2)
