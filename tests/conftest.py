"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.crypto.hashing import Secret
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.graph.digraph import figure3_graph, ring_graph
from repro.sim.world import World


@pytest.fixture
def registry() -> KeyRegistry:
    return KeyRegistry()


@pytest.fixture
def chain(registry) -> Blockchain:
    return Blockchain("testchain", registry)


@pytest.fixture
def world() -> World:
    return World(["apricot", "banana"])


@pytest.fixture
def alice_keys(world) -> KeyPair:
    return world.register_party("Alice")


@pytest.fixture
def bob_keys(world) -> KeyPair:
    return world.register_party("Bob")


@pytest.fixture
def secret() -> Secret:
    return Secret.from_text("test-secret")


@pytest.fixture
def fig3():
    return figure3_graph()


@pytest.fixture
def ring3():
    return ring_graph(3)
