"""Tests for premium bootstrapping (§6, Figure 2)."""

import pytest

from repro.core.bootstrap import (
    BootstrapSpec,
    BootstrappedSwap,
    extract_bootstrap_outcome,
    initial_risk,
    plan_stages,
    premium_ladder,
    rounds_estimate,
    rounds_needed,
    STAGE_SPAN,
)
from repro.errors import ProtocolError
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


# ----------------------------------------------------------------------
# ladder arithmetic
# ----------------------------------------------------------------------
def test_million_dollar_example():
    """§6: 'With 1% premiums and $4 initial lock-up risk, 3 bootstrapping
    rounds are enough to hedge a $1,000,000 swap.'"""
    assert rounds_needed(1_000_000, 1_000_000, 100, 4) == 3
    assert initial_risk(1_000_000, 1_000_000, 100, 3) == 4


def test_ladder_closed_form():
    """B_i = (iA + B) / P^i for the real-valued ladder."""
    ladder = premium_ladder(1_000_000, 1_000_000, 100, 3)
    assert ladder == [(1_000_000, 1_000_000), (10_000, 20_000), (100, 300), (1, 4)]


def test_ladder_rounds_up():
    ladder = premium_ladder(10, 10, 3, 2)
    # level 1: A=ceil(10/3)=4, B=ceil(20/3)=7; level 2: A=ceil(4/3)=2, B=ceil(11/3)=4
    assert ladder == [(10, 10), (4, 7), (2, 4)]


def test_rounds_estimate_close_to_exact():
    estimate = rounds_estimate(1_000_000, 1_000_000, 100, 4)
    assert 2.5 < estimate < 3.0
    assert rounds_needed(1_000_000, 1_000_000, 100, 4) == 3


def test_rounds_needed_one_when_plain_premium_acceptable():
    """r = 1 is the plain §5.2 swap: premium (A+B)/P = 2 fits the risk."""
    assert rounds_needed(100, 100, 100, 10) == 1


def test_invalid_rate_rejected():
    with pytest.raises(ProtocolError):
        premium_ladder(10, 10, 1, 1)


def test_infeasible_risk_rejected():
    with pytest.raises(ProtocolError):
        rounds_needed(10**9, 10**9, 2, 0)


# ----------------------------------------------------------------------
# stage planning
# ----------------------------------------------------------------------
def test_stage_plan_structure():
    spec = BootstrapSpec(rounds=3)
    stages = plan_stages(spec)
    assert len(stages) == 3  # two exchange stages + the final swap
    assert stages[-1].is_final_swap
    assert stages[-1].leader == "Alice"
    # leadership alternates backwards from the final swap
    assert stages[-2].leader == "Alice" or stages[-2].leader == "Bob"
    assert [s.offset for s in stages] == [0, STAGE_SPAN, 2 * STAGE_SPAN]


def test_stage_premiums_come_from_ladder():
    spec = BootstrapSpec(rounds=3)
    ladder = premium_ladder(spec.amount_a, spec.amount_b, spec.rate, spec.rounds)
    stages = plan_stages(spec)
    final = stages[-1]
    assert (final.premium_single, final.premium_combined) == ladder[1]
    first = stages[0]
    assert (first.premium_single, first.premium_combined) == ladder[3]


# ----------------------------------------------------------------------
# the staged protocol
# ----------------------------------------------------------------------
def test_compliant_bootstrap_swaps():
    instance = BootstrappedSwap(BootstrapSpec()).build()
    result = execute(instance)
    out = extract_bootstrap_outcome(instance, result)
    assert out.swapped
    assert out.stages_completed == out.total_stages == 3
    assert out.premium_net == {"Alice": 0, "Bob": 0}
    assert not result.reverted()


def test_bootstrap_single_round():
    spec = BootstrapSpec(amount_a=10_000, amount_b=10_000, rate=100, rounds=1)
    instance = BootstrappedSwap(spec).build()
    result = execute(instance)
    out = extract_bootstrap_outcome(instance, result)
    assert out.swapped


def test_bootstrap_requires_a_round():
    with pytest.raises(ProtocolError):
        BootstrappedSwap(BootstrapSpec(rounds=0))


@pytest.mark.parametrize("halt_round", [0, 1, 3, 9, 11, 17, 19])
def test_renege_never_hurts_the_compliant_party(halt_round):
    for deviator in ("Alice", "Bob"):
        compliant = "Bob" if deviator == "Alice" else "Alice"
        instance = BootstrappedSwap(BootstrapSpec()).build()
        result = execute(instance, {deviator: lambda a, r=halt_round: halt_at(a, r)})
        out = extract_bootstrap_outcome(instance, result)
        assert out.premium_net[compliant] >= 0


def test_renege_cost_bounded_by_stage_premium():
    """Walking out mid-ladder costs at most the current stage's premiums."""
    spec = BootstrapSpec()
    stages = plan_stages(spec)
    for deviator in ("Alice", "Bob"):
        for stage in stages:
            # halt right before the stage's redemption step
            halt_round = stage.offset + 4
            instance = BootstrappedSwap(spec).build()
            result = execute(instance, {deviator: lambda a, r=halt_round: halt_at(a, r)})
            out = extract_bootstrap_outcome(instance, result)
            loss = -out.premium_net[deviator]
            assert loss <= stage.premium_combined + stage.premium_single


def test_lockup_bounded_by_one_stage():
    """§6: lock-up risk duration is one swap execution plus Δ, independent
    of the number of bootstrapping rounds."""
    for rounds in (1, 2, 3):
        spec = BootstrapSpec(rounds=rounds)
        instance = BootstrappedSwap(spec).build()
        result = execute(instance, {"Bob": lambda a: halt_at(a, 3)})
        out = extract_bootstrap_outcome(instance, result)
        assert out.max_lockup <= STAGE_SPAN


def test_initial_risk_shrinks_with_rounds():
    risks = [initial_risk(10**6, 10**6, 100, r) for r in range(1, 5)]
    assert risks[0] > risks[1] > risks[2] > risks[3]


def test_initial_risk_rejects_round_zero():
    with pytest.raises(ProtocolError):
        initial_risk(100, 100, 100, 0)
