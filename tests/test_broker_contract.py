"""Unit tests for the hedged broker contract's state machine."""

import pytest

from repro.chain.block import Transaction
from repro.core.hedged_broker import HedgedBrokerDeal
from repro.crypto.hashkeys import HashKey, SignedPath
from repro.protocols.instance import execute
from repro.sim.runner import SyncRunner


def _fresh(run_rounds=0):
    instance = HedgedBrokerDeal(premium=1).build()
    if run_rounds:
        runner = SyncRunner(instance.world, list(instance.actors.values()))
        runner.run(run_rounds, parties=list(instance.actors))
    return instance


def _call(instance, label, sender, method, **args):
    chain_name, address = instance.contracts[label]
    chain = instance.world.chain(chain_name)
    return chain.execute(
        Transaction(chain=chain_name, sender=sender, contract=address, method=method, args=args)
    )


def test_trade_requires_escrow():
    instance = _fresh(run_rounds=3)
    tx = _call(instance, "ticket", "Alice", "trade")
    assert tx.receipt.status == "reverted"
    assert "nothing escrowed" in tx.receipt.error


def test_trade_only_by_broker():
    instance = _fresh(run_rounds=6)  # escrows have landed
    tx = _call(instance, "ticket", "Bob", "trade")
    assert tx.receipt.status == "reverted"
    assert "only Alice" in tx.receipt.error


def test_double_trade_rejected():
    instance = _fresh(run_rounds=7)  # trades landed at height 7
    tx = _call(instance, "ticket", "Alice", "trade")
    assert tx.receipt.status == "reverted"
    assert "already traded" in tx.receipt.error


def test_escrow_premium_wrong_sender():
    instance = _fresh()
    instance.world.chain("ticket-chain").advance()
    tx = _call(instance, "ticket", "Carol", "deposit_escrow_premium")
    assert tx.receipt.status == "reverted"


def test_trading_premium_only_by_broker():
    instance = _fresh()
    instance.world.chain("coin-chain").advance()
    tx = _call(instance, "coin", "Bob", "deposit_trading_premium")
    assert tx.receipt.status == "reverted"


def test_redemption_premium_wrong_arc_host():
    instance = _fresh(run_rounds=2)
    alice = instance.actors["Alice"]
    payload = f"rpremium:{alice.secret.hashlock.digest}"
    chain_proof = SignedPath.create(payload, alice.keypair, "Alice")
    # arc (Bob, Alice) lives on the ticket contract, not the coin one
    tx = _call(
        instance, "coin", "Alice", "deposit_redemption_premium",
        arc=("Bob", "Alice"), path_chain=chain_proof,
    )
    assert tx.receipt.status == "reverted"
    assert "not hosted" in tx.receipt.error


def test_contract_activation_lifecycle():
    instance = _fresh(run_rounds=1)
    ticket = instance.contract("ticket")
    assert not ticket.contract_activated
    instance2 = _fresh(run_rounds=5)  # all premium phases landed
    ticket2 = instance2.contract("ticket")
    assert ticket2.contract_activated


def test_full_run_resolves_every_premium():
    instance = _fresh()
    execute(instance)
    for label in ("ticket", "coin"):
        contract = instance.contract(label)
        assert contract.escrow_premium_state == "refunded"
        assert contract.trading_premium_state == "refunded"
        assert all(d.state == "refunded" for d in contract.rdeposits.values())
        assert contract.escrow_state == "redeemed"


def test_forwarded_hashkey_path_must_match_redeemer():
    instance = _fresh(run_rounds=7)
    bob = instance.actors["Bob"]
    # Bob presents his own key on the TICKET contract directly: its path
    # head (Bob) is not a ticket-contract redeemer ({Alice, Carol}).
    own = HashKey.originate(bob.secret, bob.keypair, "Bob")
    tx = _call(instance, "ticket", "Bob", "present_hashkey", hashkey=own)
    assert tx.receipt.status == "reverted"
    assert "redeemers" in tx.receipt.error
