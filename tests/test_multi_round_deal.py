"""Tests for the multi-round deal (§8.2 trading-rounds extension)."""

import pytest

from repro.core.multi_round_deal import (
    DealSpec,
    MultiRoundDeal,
    deal_premium_tables,
    extract_deal_outcome,
)
from repro.errors import ProtocolError
from repro.parties.strategies import halt_at, skip_methods
from repro.protocols.instance import execute

SPEC2 = DealSpec()  # two brokers: Ann then Mike


def run(spec=SPEC2, deviations=None):
    instance = MultiRoundDeal(spec, premium=1).build()
    result = execute(instance, deviations or {})
    return instance, result, extract_deal_outcome(instance, result)


# ----------------------------------------------------------------------
# structure and premium tables
# ----------------------------------------------------------------------
def test_deal_digraph_is_strongly_connected():
    graph = SPEC2.graph()
    assert graph.is_strongly_connected()
    assert len(graph.arcs) == 6  # 3 ticket hops + 3 coin hops


def test_single_broker_matches_figure4_recurrence():
    """r = 1 degenerates to the paper's E = T_1(A), T_1(v,w) = R_w(w)."""
    spec = DealSpec(brokers=("Solo",))
    tables = deal_premium_tables(spec, 1)
    trading = tables["trading"]
    orig = tables["originations"]
    assert trading[("Solo", spec.buyer)] == orig[spec.buyer]
    assert trading[("Solo", spec.seller)] == orig[spec.seller]
    total = trading[("Solo", spec.buyer)] + trading[("Solo", spec.seller)]
    assert tables["escrow"][(spec.seller, "Solo")] == total
    assert tables["escrow"][(spec.buyer, "Solo")] == total


def test_two_broker_cover_recurrence():
    """T_1(Ann -> Mike) covers Mike's round-2 premiums exactly."""
    tables = deal_premium_tables(SPEC2, 1)
    trading = tables["trading"]
    mikes_round2 = trading[("Mike", "Buyer")] + trading[("Mike", "Ann")]
    assert trading[("Ann", "Mike")] == mikes_round2


def test_escrow_shares_cover_broker_deficits():
    tables = deal_premium_tables(SPEC2, 1)
    for arc, shares in tables["escrow_shares"].items():
        assert all(amount > 0 for _, amount in shares)
        assert sum(a for _, a in shares) == tables["escrow"][arc]


def test_zero_brokers_rejected():
    with pytest.raises(ProtocolError):
        MultiRoundDeal(DealSpec(brokers=()))


# ----------------------------------------------------------------------
# compliant runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("brokers", [("Solo",), ("Ann", "Mike"), ("A1", "A2", "A3")])
def test_compliant_chain_completes(brokers):
    spec = DealSpec(brokers=brokers)
    _, result, out = run(spec)
    assert out.completed
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()
    # asset flow: tickets to the buyer, price to the seller, margins out
    assert out.tickets_delta[spec.buyer] == spec.tickets
    assert out.coins_delta[spec.seller] == spec.seller_price
    for broker in brokers:
        assert out.coins_delta[broker] == spec.margin


def test_compliant_run_trades_every_round():
    _, _, out = run()
    assert out.rounds_traded == (2, 2)


# ----------------------------------------------------------------------
# deviations
# ----------------------------------------------------------------------
def test_seller_omits_escrow():
    _, _, out = run(deviations={"Seller": lambda a: skip_methods(a, "escrow_asset")})
    assert not out.completed
    assert out.premium_net["Seller"] < 0
    assert out.premium_net["Buyer"] >= 1  # locked coins compensated
    for broker in SPEC2.brokers:
        assert out.premium_net[broker] >= 0


def test_buyer_omits_escrow():
    _, _, out = run(deviations={"Buyer": lambda a: skip_methods(a, "escrow_asset")})
    assert not out.completed
    assert out.premium_net["Buyer"] < 0
    assert out.premium_net["Seller"] >= 1
    for broker in SPEC2.brokers:
        assert out.premium_net[broker] >= 0


def test_first_broker_omits_trades():
    _, _, out = run(deviations={"Ann": lambda a: skip_methods(a, "trade")})
    assert not out.completed
    assert out.premium_net["Ann"] < 0
    for party in ("Seller", "Buyer"):
        assert out.premium_net[party] >= 1  # both assets sat locked
    assert out.premium_net["Mike"] >= 0


def test_second_broker_halts_mid_deal():
    _, _, out = run(deviations={"Mike": lambda a: halt_at(a, 9)})
    assert not out.completed
    assert out.premium_net["Mike"] < 0
    for party in ("Seller", "Buyer", "Ann"):
        assert out.premium_net[party] >= 0


def test_withheld_key_kills_both_contracts_atomically():
    """A missing key must never let one contract pay while the other
    refunds (the cross-contract atomicity property)."""
    instance = MultiRoundDeal(SPEC2, premium=1).build()
    result = execute(instance, {"Ann": lambda a: halt_at(a, 11)})
    out = extract_deal_outcome(instance, result)
    assert {out.ticket_state, out.coin_state} in ({"refunded"}, {"redeemed"})
    # and nobody loses principal either way
    if not out.completed:
        assert out.tickets_delta["Seller"] == 0
        assert out.coins_delta["Buyer"] == 0


def test_exhaustive_halt_sweep_two_brokers():
    spec = SPEC2
    instance = MultiRoundDeal(spec, premium=1).build()
    for who in spec.parties():
        for rnd in range(instance.horizon):
            _, _, out = run(spec, {who: lambda a, r=rnd: halt_at(a, r)})
            for party, side in ((spec.seller, "ticket"), (spec.buyer, "coin")):
                if party == who:
                    continue
                state = out.ticket_state if side == "ticket" else out.coin_state
                need = 1 if (state == "refunded" and not out.completed) else 0
                assert out.premium_net[party] >= need, f"{who}@{rnd}: {party}"
            for broker in spec.brokers:
                if broker != who:
                    assert out.premium_net[broker] >= 0, f"{who}@{rnd}: {broker}"
            if not out.completed:
                if spec.seller != who:
                    assert out.tickets_delta[spec.seller] == 0, f"{who}@{rnd}"
                if spec.buyer != who:
                    assert out.coins_delta[spec.buyer] == 0, f"{who}@{rnd}"


def test_premium_phase_walkout_is_minor():
    _, _, out = run(deviations={"Mike": lambda a: halt_at(a, 2)})
    assert not out.completed
    assert out.ticket_state == "absent" and out.coin_state == "absent"
    for party in ("Seller", "Buyer", "Ann"):
        assert out.premium_net[party] >= 0
