"""The rational-adversary ablation engine and its satellite contracts.

Pins, per ISSUE 3:

- the **deterrence theorem**, property-style: at the staked stage the
  rational pivot walks exactly when the shocked value drop exceeds the
  closed-form stake its premium fraction buys (s < π completes, s > π
  walks, for the two-party grid and the generalized roles),
- the measured two-party frontier equals the closed-form π threshold
  within one grid step,
- frontier digests are byte-identical across serial / pooled /
  sharded-then-merged executions, and survive a JSON round trip,
- the ``ablation`` factory is registered for pool reuse and the
  worker-side registry audit names unknown factories loudly,
- violations carry a rendered lane trace (one-shot debuggability),
- scenario metrics are digest-covered and transported by the report JSON.
"""

import json

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignRunner,
    MatrixSpec,
    ScenarioMatrix,
    WorkerPool,
    ablation_matrix,
    merge_reports,
    reduce_frontier,
)
from repro.campaign.ablation import (
    ABLATION_FAMILIES,
    FrontierReport,
    deterrence_stake,
    shocked_notional,
)
from repro.campaign.pool import register_matrix_factory, registered_factories

PREMIUMS = (0.0, 0.01, 0.03, 0.08)
SHOCKS = (0.015, 0.045, 0.105)


def small_grid(families, premiums=PREMIUMS, shocks=SHOCKS, stages=None):
    return ablation_matrix(
        families=families,
        premium_fractions=premiums,
        shock_fractions=shocks,
        stages=stages,
    )


def run_frontier(families, **kwargs):
    report = CampaignRunner(small_grid(families, **kwargs)).run()
    assert report.ok, [f"{v.scenario}: {v.message}" for v in report.violations]
    return reduce_frontier(report)


# ----------------------------------------------------------------------
# the deterrence theorem, per family (satellite: property-style tests)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ABLATION_FAMILIES)
def test_staked_pivot_walks_iff_shock_beats_the_closed_form_stake(family):
    frontier = run_frontier((family,))
    notional = shocked_notional(family)
    checked = 0
    for shock in SHOCKS:
        for cell in frontier.row(family, "staked", shock).cells:
            should_walk = notional * shock > deterrence_stake(family, cell.pi)
            assert cell.walked == should_walk, (family, shock, cell)
            # walking and profitability coincide for a rational pivot
            assert cell.walked == cell.deviation_profitable, cell
            checked += 1
    assert checked == len(SHOCKS) * len(PREMIUMS)


@pytest.mark.parametrize("family", ABLATION_FAMILIES)
def test_pre_stake_shocks_cannot_be_deterred_and_are_victimless(family):
    frontier = run_frontier((family,))
    for shock in SHOCKS:
        row = frontier.row(family, "pre-stake", shock)
        assert row.pi_star is None
        for cell in row.cells:
            assert cell.walked
            assert cell.victim_net == 0  # nobody had staked anything yet


def test_two_party_frontier_matches_pi_threshold_within_one_grid_step():
    """Acceptance criterion: measured π* is the paper's threshold s,
    rounded up to the next swept premium fraction."""
    frontier = run_frontier(("two-party",))
    for shock in SHOCKS:
        row = frontier.row("two-party", "staked", shock)
        deterring = [pi for pi in PREMIUMS if pi > shock]
        expected = min(deterring) if deterring else None
        assert row.pi_star == expected, (shock, row)
        if expected is not None:
            below = max(pi for pi in PREMIUMS if pi < expected)
            assert expected - shock < expected - below or expected == shock


def test_zero_premium_walks_on_any_shock_with_compensation_only_when_staked():
    frontier = run_frontier(("two-party", "multi-party"))
    for row in frontier.rows:
        cell = next(c for c in row.cells if c.pi == 0.0)
        assert cell.walked  # the base protocols hand out a free option
        assert cell.deviation_gain > 0


def test_deterred_cells_complete_with_zero_deviation_gain():
    frontier = run_frontier(("two-party",))
    for row in frontier.rows:
        for cell in row.cells:
            if not cell.walked:
                assert cell.deviation_gain == pytest.approx(0.0)
                assert cell.rational_utility == pytest.approx(cell.comply_utility)


def test_walking_from_a_stake_compensates_the_victim():
    frontier = run_frontier(("two-party",))
    for row in frontier.rows:
        if row.stage != "staked":
            continue
        for cell in row.cells:
            if cell.walked and cell.pi > 0:
                assert cell.victim_net > 0, cell


# ----------------------------------------------------------------------
# digest discipline: backends, shards, JSON
# ----------------------------------------------------------------------
def test_frontier_digest_identical_serial_vs_pooled_vs_merged_shards():
    kwargs = dict(
        families=("two-party", "auction"),
        premium_fractions=(0.0, 0.02, 0.05),
        shock_fractions=(0.015, 0.045),
    )
    serial = CampaignRunner(ablation_matrix(**kwargs)).run()
    with WorkerPool(workers=2) as pool:
        pooled = CampaignRunner(
            ablation_matrix(**kwargs), backend="process", pool=pool
        ).run()
        shards = [
            CampaignRunner(
                ablation_matrix(**kwargs), backend="process", pool=pool, shard=(i, 2)
            ).run()
            for i in (1, 2)
        ]
    assert pooled.backend == "process:pooled"
    assert serial.run_digest == pooled.run_digest
    frontier = reduce_frontier(serial)
    assert frontier.digest == reduce_frontier(pooled).digest
    assert frontier.digest == reduce_frontier(merge_reports(shards)).digest


def test_frontier_json_roundtrip_and_tamper_detection():
    frontier = run_frontier(("auction",), premiums=(0.0, 0.03), shocks=(0.045,))
    restored = FrontierReport.from_json(frontier.to_json())
    assert restored == frontier

    def tamper(mutate):
        data = json.loads(frontier.to_json())
        mutate(data)
        with pytest.raises(ValueError, match="digest mismatch"):
            FrontierReport.from_json(json.dumps(data))

    first_cell = lambda d: d["rows"][0]["cells"][0]
    tamper(lambda d: first_cell(d).update(walked=not first_cell(d)["walked"]))
    # the headline values are digest-covered too, not just the cells
    tamper(lambda d: d["rows"][0].update(pi_star=0.0))
    tamper(lambda d: d.update(complete=not d["complete"]))
    tamper(lambda d: d.update(matrix_digest="0" * 64))


def test_campaign_report_json_transports_metrics_for_merge():
    report = CampaignRunner(
        small_grid(("two-party",), premiums=(0.0, 0.03), shocks=(0.045,)),
        shard=(1, 2),
    ).run()
    restored = CampaignReport.from_json(report.to_json())
    assert restored.run_digest == report.run_digest
    assert [r.metrics for r in restored.results] == [
        r.metrics for r in report.results
    ]
    assert any(dict(r.metrics).get("utility") is not None for r in restored.results)


def test_reduce_frontier_rejects_non_ablation_and_partial_reports():
    from repro.campaign import default_matrix

    plain = CampaignRunner(default_matrix(families=["bootstrap"])).run()
    with pytest.raises(ValueError, match="not an ablation result"):
        reduce_frontier(plain)
    # a limited subsample splits comply/rational arm pairs apart
    partial = CampaignRunner(
        small_grid(("two-party",), premiums=(0.0, 0.03), shocks=(0.045,)),
        limit=5,
    ).run()
    with pytest.raises(ValueError, match="missing its"):
        reduce_frontier(partial)


def test_metrics_fold_into_the_scenario_digest():
    # same protocol runs, different shock axis → metrics differ → so must
    # the per-scenario digests (metrics are outcome, not decoration)
    a = CampaignRunner(
        small_grid(("two-party",), premiums=(0.03,), shocks=(0.015,), stages=("staked",))
    ).run()
    b = CampaignRunner(
        small_grid(("two-party",), premiums=(0.03,), shocks=(0.025,), stages=("staked",))
    ).run()
    comply_a = next(r for r in a.results if "comply" in r.label)
    comply_b = next(r for r in b.results if "comply" in r.label)
    # both comply runs complete identically on-chain; only the valuation
    # metric (utility under the shocked path) distinguishes them
    assert comply_a.premium_net == comply_b.premium_net
    assert dict(comply_a.metrics)["completed"] == 1.0
    assert comply_a.digest != comply_b.digest


# ----------------------------------------------------------------------
# pool registry audit (satellite)
# ----------------------------------------------------------------------
def test_ablation_factory_is_registered_and_rebuilds_bit_identically():
    matrix = small_grid(("auction",), premiums=(0.0, 0.03), shocks=(0.045,))
    assert isinstance(matrix.spec, MatrixSpec)
    assert matrix.spec.factory == "ablation"
    rebuilt = matrix.spec.build()
    assert rebuilt.digest() == matrix.digest()
    assert {"default", "ablation"} <= set(registered_factories())


def test_unknown_factory_audit_names_the_registry():
    with pytest.raises(KeyError, match="registered:.*ablation"):
        MatrixSpec(factory="definitely-not-registered").build()


def test_decorator_registration_round_trips_through_a_spec():
    @register_matrix_factory("test-decorated")
    def tiny_matrix(seed: int = 0) -> ScenarioMatrix:
        return small_grid(("auction",), premiums=(0.0,), shocks=(0.045,))

    try:
        built = MatrixSpec(factory="test-decorated").build()
        assert len(built) > 0
        assert "test-decorated" in registered_factories()
    finally:
        from repro.campaign import pool as pool_module

        pool_module._FACTORIES.pop("test-decorated", None)


def test_ablation_grid_matches_the_factory_it_wraps():
    from repro.campaign import AblationGrid

    grid = AblationGrid(
        families=("auction",), premium_fractions=(0.0, 0.03), shock_fractions=(0.045,)
    )
    matrix = grid.matrix()
    # two arms per cell, and the declarative cell count matches the blocks
    assert grid.cells() == len(matrix.blocks)
    assert len(matrix) == 2 * grid.cells()
    assert matrix.digest() == ablation_matrix(
        families=("auction",), premium_fractions=(0.0, 0.03), shock_fractions=(0.045,)
    ).digest()
    # the defaults mirror the factory's defaults
    assert AblationGrid().matrix().digest() == ablation_matrix().digest()


def test_ablation_matrix_validates_families_and_stages():
    with pytest.raises(ValueError, match="unknown ablation families"):
        ablation_matrix(families=("bootstrap",))
    with pytest.raises(ValueError, match="unknown shock stages"):
        ablation_matrix(stages=("mid-flight",))
    with pytest.raises(ValueError, match="unknown ablation family"):
        deterrence_stake("bootstrap", 0.02)


# ----------------------------------------------------------------------
# trace capture on violation (satellite)
# ----------------------------------------------------------------------
def _always_fails(instance, result, adversaries):
    return ["synthetic violation for trace capture"]


def test_violations_carry_a_rendered_lane_trace():
    from repro.core.hedged_two_party import HedgedTwoPartySwap

    matrix = ScenarioMatrix()
    matrix.add_block(
        family="two-party",
        schedule="trace",
        builder=lambda: HedgedTwoPartySwap().build(),
        properties=(_always_fails,),
        strategies={},
    )
    report = CampaignRunner(matrix).run()
    assert not report.ok
    violation = report.violations[0]
    assert violation.trace
    assert "height" in violation.trace  # the lane-diagram header
    assert "apricot" in violation.trace and "banana" in violation.trace
    # the trace survives the JSON transport used for shard collection
    restored = CampaignReport.from_json(report.to_json())
    assert restored.violations[0].trace == violation.trace
    # and stays out of the digest: it is derived presentation
    assert restored.run_digest == report.run_digest


def test_clean_scenarios_carry_no_trace():
    report = CampaignRunner(
        small_grid(("auction",), premiums=(0.03,), shocks=(0.045,), stages=("staked",))
    ).run()
    assert report.ok
    assert all(result.trace == "" for result in report.results)
