"""Hypothesis property tests at the protocol level.

These run the *full* hedged multi-party protocol on randomly generated
strongly-connected digraphs with minimum-FVS leader sets, under compliance
and under random single-party deviations, asserting Lemma 1 and Lemma 6 on
every run.  This is the strongest evidence the implementation generalizes
beyond the paper's worked examples.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bootstrap import BootstrapSpec, BootstrappedSwap, extract_bootstrap_outcome
from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    HedgedAuction,
    extract_auction_outcome,
)
from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.graph.digraph import SwapGraph
from repro.graph.feedback import minimum_feedback_vertex_set
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


@st.composite
def swap_graphs(draw):
    """Random strongly connected digraphs on 2–4 parties (ring + extras)."""
    n = draw(st.integers(min_value=2, max_value=4))
    parties = [f"P{i}" for i in range(n)]
    arcs = {(parties[i], parties[(i + 1) % n]) for i in range(n)}
    extra = draw(
        st.sets(
            st.tuples(st.sampled_from(parties), st.sampled_from(parties)).filter(
                lambda a: a[0] != a[1]
            ),
            max_size=4,
        )
    )
    arcs |= extra
    return SwapGraph.build(parties, sorted(arcs), default_amount=10)


@given(swap_graphs(), st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_graph_compliant_run_satisfies_lemma1(graph, premium):
    leaders = minimum_feedback_vertex_set(graph)
    instance = HedgedMultiPartySwap(graph=graph, leaders=leaders, premium=premium).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed, f"{graph.arcs} leaders={leaders}"
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()
    # liveness: no contract holds anything at the end
    for chain in instance.world.chains.values():
        for (asset, account), balance in chain.ledger.snapshot().items():
            assert not (account in chain.contracts and balance != 0)


@given(
    swap_graphs(),
    st.integers(min_value=0, max_value=3),  # which party deviates
    st.integers(min_value=0, max_value=30),  # halt round
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_graph_random_halt_satisfies_lemma6(graph, party_index, halt_round):
    leaders = minimum_feedback_vertex_set(graph)
    deviator = graph.parties[party_index % len(graph.parties)]
    instance = HedgedMultiPartySwap(graph=graph, leaders=leaders, premium=1).build()
    result = execute(
        instance, {deviator: lambda a, r=halt_round: halt_at(a, r)}
    )
    out = extract_multi_party_outcome(instance, result)
    for party in out.parties:
        if party == deviator:
            continue
        assert out.safety_holds(party), (graph.arcs, deviator, halt_round, party)
        assert out.hedged_holds(party), (
            graph.arcs, deviator, halt_round, party, out.premium_net,
        )


@given(
    st.integers(min_value=2, max_value=5),  # bidder count
    st.lists(st.integers(min_value=1, max_value=500), min_size=5, max_size=5),
    st.sampled_from(list(AuctioneerStrategy)),
)
@settings(max_examples=40, deadline=None)
def test_random_auction_never_steals_bids(n, amounts, strategy):
    bidders = tuple(f"B{i}" for i in range(n))
    spec = AuctionSpec(
        bidders=bidders,
        bids={b: amounts[i] for i, b in enumerate(bidders)},
        premium=1,
    )
    instance = HedgedAuction(spec=spec, strategy=strategy).build()
    result = execute(instance)
    out = extract_auction_outcome(instance, result)
    for bidder in bidders:
        assert not out.bid_stolen(bidder), (strategy, out.coins_delta)
    # Lemma 7 with compliant bidders: both contracts agree
    ticket = instance.contract("ticket")
    coin = instance.contract("coin")
    assert set(ticket.accepted) == set(coin.accepted)


@given(
    st.integers(min_value=100, max_value=10**6),
    st.integers(min_value=100, max_value=10**6),
    st.sampled_from([10, 50, 100]),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_random_bootstrap_ladder_invariants(a, b, rate, rounds):
    from repro.core.bootstrap import premium_ladder

    ladder = premium_ladder(a, b, rate, rounds)
    # levels shrink by roughly 1/rate and protection never falls short
    for (a_lo, b_lo), (a_hi, b_hi) in zip(ladder[1:], ladder):
        assert a_lo * rate >= a_hi
        assert b_lo * rate >= a_hi + b_hi
        assert a_lo >= 1 and b_lo >= 1


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=0, max_value=25))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_bootstrap_renege_never_hurts_alice(rounds, halt_round):
    spec = BootstrapSpec(amount_a=50_000, amount_b=50_000, rate=50, rounds=rounds)
    instance = BootstrappedSwap(spec).build()
    result = execute(instance, {"Bob": lambda a, r=halt_round: halt_at(a, r)})
    out = extract_bootstrap_outcome(instance, result)
    assert out.premium_net["Alice"] >= 0
    assert out.premium_net["Bob"] <= 0


@given(
    st.integers(min_value=1, max_value=3),  # chain length r
    st.integers(min_value=0, max_value=4),  # which party deviates
    st.integers(min_value=0, max_value=20),  # halt round
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_deal_halt_keeps_compliant_whole(r, party_index, halt_round):
    from repro.core.multi_round_deal import (
        DealSpec,
        MultiRoundDeal,
        extract_deal_outcome,
    )

    spec = DealSpec(brokers=tuple(f"B{i}" for i in range(r)))
    parties = spec.parties()
    deviator = parties[party_index % len(parties)]
    instance = MultiRoundDeal(spec, premium=1).build()
    result = execute(instance, {deviator: lambda a, h=halt_round: halt_at(a, h)})
    out = extract_deal_outcome(instance, result)
    for party in parties:
        if party == deviator:
            continue
        need = 0
        if party == spec.seller and out.ticket_state == "refunded" and not out.completed:
            need = 1
        if party == spec.buyer and out.coin_state == "refunded" and not out.completed:
            need = 1
        assert out.premium_net[party] >= need, (r, deviator, halt_round, party)
    if not out.completed:
        if spec.seller != deviator:
            assert out.tickets_delta[spec.seller] == 0
        if spec.buyer != deviator:
            assert out.coins_delta[spec.buyer] == 0
