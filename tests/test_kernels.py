"""Vectorized payoff kernels vs the simulator (ISSUE 6 tentpole).

The kernel engine replays calibrated trajectory templates under vectorized
price arithmetic; the simulator stays authoritative as the audit path.
These tests pin the parity contract at every integration level:

- **scenario-level parity**: for each family (and the named coalitions),
  `CampaignRunner(backend="kernel")` reproduces the serial simulator's
  per-scenario results — digest, metrics, violations, premium net,
  transaction counts — byte-for-byte, hence an identical ``run_digest``,
- **randomized off-grid parity** (satellite): seeded random (π, shock,
  stage) probes far off the default lattice agree engine-vs-engine, so
  parity is a property of the kernels, not a coincidence of grid points,
- **spec plumbing**: ``ExperimentSpec.engine`` validates, round-trips
  through JSON, keeps legacy (engine-less, simulator) spec digests
  byte-stable, and refuses meaningless combinations (kernel campaigns,
  kernel backends on non-ablation matrices),
- **experiment-level parity**: a kernel-engine experiment reproduces the
  simulator experiment's campaign digest and frontier digest.
"""

import json
import random

import pytest

from repro.campaign import (
    CampaignRunner,
    Experiment,
    ExperimentError,
    ExperimentSpec,
    KernelEngine,
    KernelUnsupported,
    ablate_spec,
    ablation_cell,
    ablation_matrix,
    campaign_spec,
    default_matrix,
    reduce_frontier,
    refine_spec,
)
from repro.campaign.experiment import EXPERIMENT_ENGINES
from repro.campaign.scenario import Scenario


def _assert_results_identical(serial, kernel):
    assert len(serial.results) == len(kernel.results)
    for want, got in zip(serial.results, kernel.results):
        assert got.digest == want.digest, (want.label, want, got)
        assert got.label == want.label
        assert got.axes == want.axes
        assert got.violations == want.violations
        assert got.metrics == want.metrics
        assert got.transactions == want.transactions
        assert got.reverted == want.reverted
        assert got.premium_net == want.premium_net
        assert got.trace == want.trace
    assert kernel.run_digest == serial.run_digest


# ---------------------------------------------------------------------------
# scenario-level parity, per family


@pytest.mark.parametrize(
    "family", ["two-party", "multi-party", "broker", "auction"]
)
def test_kernel_matches_simulator_per_family(family):
    matrix = ablation_matrix(
        families=(family,),
        premium_fractions=(0.0, 0.03),
        shock_fractions=(0.015, 0.105),
        stages=("pre-stake", "staked"),
    )
    serial = CampaignRunner(matrix, backend="serial").run()
    kernel = CampaignRunner(matrix, backend="kernel").run()
    _assert_results_identical(serial, kernel)


def test_kernel_matches_simulator_with_coalitions():
    matrix = ablation_matrix(
        families=("multi-party", "broker"),
        premium_fractions=(0.01, 0.05),
        shock_fractions=(0.045,),
        stages=("staked",),
        coalitions=True,
    )
    serial = CampaignRunner(matrix, backend="serial").run()
    kernel = CampaignRunner(matrix, backend="kernel").run()
    _assert_results_identical(serial, kernel)


def test_kernel_matches_simulator_round_stages():
    matrix = ablation_matrix(
        families=("two-party",),
        premium_fractions=(0.02,),
        shock_fractions=(0.025, 0.065),
        stages=("all",),
    )
    serial = CampaignRunner(matrix, backend="serial").run()
    kernel = CampaignRunner(matrix, backend="kernel").run()
    _assert_results_identical(serial, kernel)


def test_kernel_frontier_matches_simulator_frontier():
    matrix = ablation_matrix(
        families=("two-party", "auction"),
        premium_fractions=(0.0, 0.01, 0.03),
        shock_fractions=(0.015, 0.045),
        stages=("staked",),
    )
    serial = reduce_frontier(CampaignRunner(matrix, backend="serial").run())
    kernel = reduce_frontier(CampaignRunner(matrix, backend="kernel").run())
    assert kernel.digest == serial.digest


# ---------------------------------------------------------------------------
# randomized off-grid probes (satellite): parity is not a lattice artifact


def _random_cells(seed, count):
    rng = random.Random(seed)
    cells = []
    for _ in range(count):
        family = rng.choice(
            ["two-party", "multi-party", "broker", "auction"]
        )
        coalition = ""
        if rng.random() < 0.3:
            if family == "multi-party":
                coalition = "P1+P2"
            elif family == "broker":
                coalition = "seller+buyer"
        pi = rng.uniform(0.0, 0.1)
        shock = rng.uniform(0.001, 0.12)
        stage = rng.choice(["pre-stake", "staked", "round:1", "round:2"])
        cells.append((family, pi, shock, stage, coalition))
    return cells


@pytest.mark.parametrize("seed", [7, 23, 91])
def test_kernel_matches_simulator_off_grid(seed):
    for family, pi, shock, stage, coalition in _random_cells(seed, 6):
        matrix = ablation_cell(family, pi, shock, stage, coalition=coalition)
        serial = CampaignRunner(matrix, backend="serial").run()
        kernel = CampaignRunner(matrix, backend="kernel").run()
        _assert_results_identical(serial, kernel)


def test_shared_engine_reuses_templates_across_probes():
    engine = KernelEngine()
    digests = []
    for pi in (0.0125, 0.01875):
        matrix = ablation_cell("two-party", pi, 0.015, "staked")
        report = CampaignRunner(
            matrix, backend="kernel", kernel=engine
        ).run()
        digests.append(report.run_digest)
        serial = CampaignRunner(matrix, backend="serial").run()
        assert report.run_digest == serial.run_digest
    assert digests[0] != digests[1]  # distinct premiums, distinct runs


# ---------------------------------------------------------------------------
# guard rails


def test_kernel_backend_rejects_non_ablation_matrix():
    matrix = default_matrix()
    with pytest.raises(ValueError, match="ablation"):
        CampaignRunner(matrix, backend="kernel")


def test_kernel_argument_requires_kernel_backend():
    matrix = ablation_cell("two-party", 0.01, 0.015, "staked")
    with pytest.raises(ValueError, match="backend='kernel'"):
        CampaignRunner(matrix, backend="serial", kernel=KernelEngine())


def test_kernel_engine_rejects_foreign_scenarios():
    engine = KernelEngine()
    scenario = next(iter(default_matrix().scenarios()))
    assert isinstance(scenario, Scenario)
    with pytest.raises(KernelUnsupported):
        engine.run([scenario])


# ---------------------------------------------------------------------------
# ExperimentSpec.engine plumbing


def test_engine_field_validates():
    assert set(EXPERIMENT_ENGINES) == {"simulator", "kernel"}
    spec = ablate_spec(families=("two-party",))
    assert spec.engine == "kernel"  # vectorized engine is the default
    assert ablate_spec(families=("two-party",), engine="simulator").engine == (
        "simulator"
    )
    with pytest.raises(ExperimentError):
        ablate_spec(families=("two-party",), engine="warp")


def test_engine_kernel_refused_for_campaign_kind():
    with pytest.raises(ExperimentError, match="kernel"):
        ExperimentSpec(
            kind="campaign", matrix=campaign_spec().matrix, engine="kernel"
        )


def test_engine_is_part_of_spec_identity():
    """Engine choice selects an execution path the digests must survive,
    so a non-default engine is part of the spec's identity."""
    sim = ablate_spec(families=("two-party",), engine="simulator")
    ker = ablate_spec(families=("two-party",))
    assert sim.digest() != ker.digest()


def test_engine_round_trips_through_json():
    for engine in EXPERIMENT_ENGINES:
        spec = refine_spec(families=("two-party",), engine=engine)
        back = ExperimentSpec.from_json(spec.to_json())
        assert back.engine == engine
        assert back.digest() == spec.digest()


def test_engineless_json_defaults_to_simulator():
    spec = ablate_spec(families=("two-party",), engine="simulator")
    data = json.loads(spec.to_json())
    del data["engine"]
    back = ExperimentSpec.from_json(json.dumps(data))
    assert back.engine == "simulator"
    assert back.digest() == spec.digest()


# ---------------------------------------------------------------------------
# experiment-level parity


def test_experiment_kernel_engine_matches_simulator():
    grid = dict(
        families=("two-party", "broker"),
        premium_fractions=(0.0, 0.02, 0.05),
        shock_fractions=(0.015, 0.045),
        stages=("staked",),
    )
    sim = Experiment(ablate_spec(engine="simulator", **grid)).run()
    ker = Experiment(ablate_spec(engine="kernel", **grid)).run()
    assert ker.campaign.run_digest == sim.campaign.run_digest
    assert ker.frontier.digest == sim.frontier.digest
    assert ker.campaign.workers == 1
