"""Seeded POOL001 violations (never executed; see README.md)."""

from repro.campaign.pool import MatrixSpec, WorkerPool, register_matrix_factory


def ship_lambda(pool: WorkerPool, digest: str):
    spec = MatrixSpec(
        factory="default",
        args=(lambda: 3,),  # POOL001: lambda crosses the worker boundary
        kwargs=(),
    )
    return pool.run_indices(spec, digest, [0])


def ship_closure(pool: WorkerPool, digest: str, spec: MatrixSpec):
    def local_builder():  # a closure: unpicklable by qualified name
        return 7

    return pool.run_indices(spec, digest, local_builder)  # POOL001


def register_closure(premium: int):
    @register_matrix_factory("closure-factory")  # POOL001: local factory
    def build_matrix():
        return premium

    return build_matrix


def primitives_are_clean(pool: WorkerPool, digest: str):
    spec = MatrixSpec(factory="default", args=(3, "ring"), kwargs=())
    return pool.run_indices(spec, digest, [0, 1])


def suppressed_is_fine(pool: WorkerPool, digest: str):
    spec = MatrixSpec(
        factory="default",
        args=(lambda: 3,),  # lint: disable=POOL001
        kwargs=(),
    )
    return pool.run_indices(spec, digest, [0])
