"""Helpers for ``seeded_flow.py`` (never executed; see README.md).

Every hazard lives *here*, in functions whose names carry no digest or
label scent and whose bodies never touch :mod:`hashlib` — so the
per-file heuristic rules (DET/ORD/CANON) provably stay silent on this
module.  Only the interprocedural flow pass can connect these sources
to the sinks in ``seeded_flow.py``.
"""

import time


def wall_stamp() -> float:
    # DET001 deliberately blesses perf_counter (the sanctioned timer);
    # the hazard only exists because seeded_flow.digest_batch hashes it.
    return time.perf_counter()


def jittered_stamp() -> float:
    # One more hop: the source sits two calls away from the sink.
    return wall_stamp() + 0.0


def dedup_entries(raw) -> list:
    # Set comprehension far from any digest scope: ORD001 cannot see it.
    return [entry for entry in {item.strip() for item in raw}]


def pct_text(x: float) -> str:
    # Lossy float text far from label/digest scope: CANON001 cannot see it.
    return f"{x:g}"
