"""Seeded CANON001 violations (never executed; see README.md)."""

from hashlib import sha256

from repro.campaign.canon import canon_float, fmt_fraction


def cell_digest(pi: float, shock: float) -> str:
    line = f"{pi:g}|{shock:.6f}"  # CANON001 x2: lossy float specs hashed
    return sha256(line.encode()).hexdigest()


def axis_label(pi: float) -> str:
    return format(pi, "g")  # CANON001: lossy 'g' in label code


def legacy_payload(shock: float) -> str:
    return "s=%g" % shock  # CANON001: printf float in digest code


def canonical_is_clean(pi: float, shock: float) -> str:
    line = f"{fmt_fraction(pi)}|{canon_float(shock)!r}"
    return sha256(line.encode()).hexdigest()


def presentation_is_clean(pi: float) -> str:
    # Clean: no digest/label scope — plain progress printing.
    return f"refining pi={pi:g}"


def suppressed_is_fine(pi: float) -> str:
    line = f"{pi:g}"  # lint: disable=CANON001
    return sha256(line.encode()).hexdigest()  # lint: disable=FLOW003
