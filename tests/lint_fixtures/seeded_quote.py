"""Seeded quote-layer violations (never executed; see README.md).

The quote service's standing invariant is that service metadata — which
tier answered, how long it took, any tracing identifiers — stays outside
the quote digest.  These fixtures violate it both ways: telemetry
smuggled *into* a digest-bearing payload without an exclusion entry
(DIG001), and a tier set hashed in nondeterministic iteration order
(ORD001).
"""

import json
from dataclasses import dataclass
from hashlib import sha256


@dataclass(frozen=True)
class SmuggledQuote:
    """``trace_id`` rides the serialized payload but never the digest.

    DIG001: the field is neither hashed, nor excluded in
    ``DIGEST_EXCLUSIONS``, nor inline-disabled — so two byte-different
    payloads share one digest, and the traced/untraced byte-identity
    audit can no longer catch the fork.
    """

    family: str
    pi_star: float
    trace_id: str  # DIG001: serialized below, absent from digest()

    def digest(self) -> str:
        payload = f"quote|{self.family}|{self.pi_star!r}"
        return sha256(payload.encode()).hexdigest()

    def to_json(self) -> str:
        return json.dumps(
            {
                "family": self.family,
                "pi_star": self.pi_star,
                "trace_id": self.trace_id,
            }
        )


def ladder_digest(tiers: set) -> str:
    """Hash the tiers a quote engine consulted — in set order.

    ORD001: set iteration order is arbitrary across processes, so the
    same ladder produces different digests run to run; the real engine
    iterates the fixed ``(1, 2, 3)`` tuple.
    """
    digest = sha256()
    for tier in tiers:  # ORD001: unsorted set iteration feeds the hash
        digest.update(str(tier).encode())
    return digest.hexdigest()
