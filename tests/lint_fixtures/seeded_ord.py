"""Seeded ORD001 violations (never executed; see README.md)."""

from hashlib import sha256
from pathlib import Path


def tree_digest(root: Path) -> str:
    digest = sha256()
    for path in root.rglob("*.py"):  # ORD001: filesystem order hashed
        digest.update(path.read_bytes())
    return digest.hexdigest()


def member_digest(members: set) -> str:
    digest = sha256()
    for member in members:  # ORD001: set iteration hashed
        digest.update(str(member).encode())
    return digest.hexdigest()


def label_payload(parties) -> str:
    # ORD001: join over a set inside digest-producing code.
    return ",".join({p.upper() for p in parties})


def sorted_is_clean(root: Path, members: set) -> str:
    digest = sha256()
    for path in sorted(root.rglob("*.py")):  # clean: sorted walk
        digest.update(path.read_bytes())
    for member in sorted(members):  # clean: sorted set
        digest.update(str(member).encode())
    return digest.hexdigest()


def order_free_is_clean(members: set) -> int:
    # Clean: sum() cannot see iteration order.
    digest = sha256(b"count")
    digest.update(str(sum({len(m) for m in members})).encode())
    return len(digest.hexdigest())


def presentation_is_clean(members: set) -> list:
    # Clean: no digest/JSON sink in this function's scope.
    return [m for m in members]


def suppressed_is_fine(members: set) -> str:
    digest = sha256()
    for member in members:  # lint: disable=ORD001
        digest.update(str(member).encode())  # lint: disable=FLOW002
    return digest.hexdigest()
