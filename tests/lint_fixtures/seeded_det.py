"""Seeded DET001/DET002 violations (never executed; see README.md)."""

import os
import random
import time
import uuid


def stamp_result(payload: dict) -> dict:
    payload["at"] = time.time()  # DET001: wall clock
    payload["run_id"] = str(uuid.uuid4())  # DET001: OS entropy
    payload["nonce"] = os.urandom(8).hex()  # DET001: OS entropy
    payload["marker"] = id(payload)  # DET001: per-process identity
    return payload


def jitter() -> float:
    return random.random()  # DET002: global unseeded RNG


def make_rng():
    return random.Random()  # DET002: unseeded constructor


def seeded_is_fine() -> float:
    # Clean: an explicit seed pins the stream.
    return random.Random(1729).random()


def suppressed_is_fine() -> float:
    return time.time()  # lint: disable=DET001
