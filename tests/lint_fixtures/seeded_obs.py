"""Seeded DET003 violations — telemetry leaking into digest scope.

Never executed; see README.md.  These are the obs-boundary cases: the
:mod:`repro.obs` layer is write-only from engine code, and every shape
of *reading telemetry back* inside digest-producing code must trip the
linter — plus a trace field smuggled onto a report dataclass still
trips DIG001, and hashing an unordered set of span names still trips
ORD001.  The clean cases pin the other side of the contract: write-only
instrumentation (``maybe_span``) is blessed even inside a digest body.
"""

import json
from dataclasses import dataclass
from hashlib import sha256

from repro.obs import Tracer, maybe_span, phase_fragments


def describe_run(tracer) -> str:
    # DET003: snapshot() readback in a digest-named scope.
    snap = tracer.metrics.snapshot()
    return f"run with {len(snap.counters)} counters"


def run_digest(tracer, payload: bytes) -> str:
    digest = sha256(payload)
    # DET003: a counter value folded into a hash.
    digest.update(str(tracer.metrics.counter("cache.hit")).encode())
    return digest.hexdigest()


def bench_payload(snapshot) -> str:
    # DET003: phase_fragments() resolves to repro.obs — telemetry
    # timings serialized into a payload.
    return json.dumps(phase_fragments(snapshot))


def timestamped_payload() -> str:
    # DET003: constructing a repro.obs object inside digest scope.
    tracer = Tracer()
    return json.dumps({"epoch": tracer._epoch})


@dataclass(frozen=True)
class TracedReport:
    """``span_count`` smuggled onto a report — invisible to its digest."""

    scenarios: int
    run_seed: int
    span_count: int  # DIG001: a trace artifact the digest cannot see

    def digest(self) -> str:
        payload = f"{self.scenarios}|{self.run_seed}"
        return sha256(payload.encode()).hexdigest()


def span_names_digest(names: set) -> str:
    digest = sha256()
    for name in names:  # ORD001: set of span names hashed unsorted
        digest.update(name.encode())
    return digest.hexdigest()


def write_only_is_clean(tracer, payload: bytes) -> str:
    # Clean: maybe_span is a telemetry *write* — blessed in digest scope.
    with maybe_span(tracer, "digest"):
        return sha256(payload).hexdigest()


def ledger_snapshot_is_clean(chain) -> str:
    # Clean: simulation state named snapshot() is not telemetry.
    digest = sha256()
    for key, value in sorted(chain.ledger.snapshot().items()):
        digest.update(f"{key}={value}".encode())
    return digest.hexdigest()


def suppressed_is_fine(tracer) -> str:
    snap = tracer.metrics.snapshot()  # lint: disable=DET003
    return json.dumps({"counters": len(snap.counters)})
