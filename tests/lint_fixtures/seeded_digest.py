"""Seeded DIG001 violations (never executed; see README.md)."""

import json
from dataclasses import dataclass
from hashlib import sha256


@dataclass(frozen=True)
class LeakySpec:
    """``tolerance`` shapes results but is missing from digest()."""

    kind: str
    premium: float
    tolerance: float  # DIG001: not hashed below — identity collision

    def digest(self) -> str:
        payload = f"{self.kind}|{self.premium!r}"
        return sha256(payload.encode()).hexdigest()


@dataclass
class LossyReport:
    """``violations`` vanishes on the first cross-host hop."""

    scenarios: int
    run_digest: str
    violations: list  # DIG001: not serialized below

    def to_json(self) -> str:
        return json.dumps(
            {"scenarios": self.scenarios, "run_digest": self.run_digest}
        )


@dataclass(frozen=True)
class CoveredSpec:
    """Clean: every field reaches the digest, directly or via a helper."""

    kind: str
    premium: float
    note: str

    def digest(self) -> str:
        return sha256(self._payload().encode()).hexdigest()

    def _payload(self) -> str:
        return f"{self.kind}|{self.premium!r}|{self.note}"


@dataclass(frozen=True)
class SuppressedSpec:
    """An inline disable on the field's declaration line is honored."""

    kind: str
    display_hint: str  # lint: disable=DIG001

    def digest(self) -> str:
        return sha256(self.kind.encode()).hexdigest()
