"""Seeded FLOW001/002/003 violations (never executed; see README.md).

Each flow here is *heuristically clean*: the source hazard lives in
``flow_helpers.py`` under an innocent name, and this module's sinks
contain no hazardous construct of their own — ``tests/test_lint_flow.py``
asserts the per-file rule families stay silent on both files while the
interprocedural pass flags all three flows with full call chains.
"""

import hashlib
from dataclasses import dataclass

from flow_helpers import dedup_entries, jittered_stamp, pct_text


def digest_batch(payload: str) -> str:
    # FLOW001: perf_counter, two calls away, reaches this hash.
    acc = hashlib.sha256()
    acc.update(payload.encode())
    acc.update(repr(jittered_stamp()).encode())
    return acc.hexdigest()


@dataclass
class MemberReport:
    members: list

    def digest(self) -> str:
        acc = hashlib.sha256()
        for member in self.members:
            acc.update(member.encode())
        return acc.hexdigest()


def build_member_report(raw) -> MemberReport:
    # FLOW002: unsorted set order flows through dedup_entries into the
    # digest-covered field MemberReport.members.
    return MemberReport(members=dedup_entries(raw))


def shock_axis_labels(values) -> list:
    # FLOW003: lossy float text from pct_text reaches these axis labels.
    return [pct_text(value) for value in values]
