"""Canonical-float and result-cache correctness fixes (ISSUE 6 satellites).

Pins:

- **fmt_fraction fixed point**: deeply-bisected premium fractions (below
  ``1e-4``, where ``repr`` switches to scientific notation) render in
  fixed point, parse back to the identical double, and never mix decimal
  and exponent forms across a grid of labels,
- **canon_float rejects non-finite values**: NaN and ±inf raise
  ``ValueError`` at the source instead of poisoning digests or JSON
  transport downstream,
- **ResultCache.get key verification**: a copied/renamed entry file whose
  stored ``"key"`` field disagrees with its address reads as a miss,
- **orphan temp sweep**: hour-old ``.tmp-*`` writer leftovers are removed
  on cache open, young ones (a concurrent writer mid-flight) survive,
- **code_version refresh**: the per-process memo can be dropped
  (``refresh=True`` / ``invalidate_code_version``) so a long-lived
  process re-hashes sources that changed underneath it.
"""

import json
import math
import os
import time

import pytest

from repro.campaign import ResultCache, ScenarioResult
from repro.campaign.cache import (
    TEMP_SWEEP_AGE_SECONDS,
    code_version,
    invalidate_code_version,
)
from repro.campaign.canon import canon_float, canon_opt, fmt_fraction


# ---------------------------------------------------------------------------
# fmt_fraction: fixed-point rendering (satellite 1)


def test_fmt_fraction_plain_values():
    assert fmt_fraction(0.025) == "0.025"
    assert fmt_fraction(0.0) == "0"
    assert fmt_fraction(-0.0) == "0"
    assert fmt_fraction(2.0) == "2"
    assert fmt_fraction(0.0328125) == "0.0328125"


@pytest.mark.parametrize(
    "value",
    [
        1e-05,
        5e-05,
        1.5e-05,
        2.44140625e-06,  # 0.01 / 2**12: a deeply-bisected premium
        9.5367431640625e-09,
        1e-10,
        -1e-05,
        -2.44140625e-06,
        1.2345678901234567e-05,
        7e-05,
    ],
)
def test_fmt_fraction_small_values_fixed_point(value):
    text = fmt_fraction(value)
    # Never scientific notation: labels across a grid must not mix forms.
    assert "e" not in text and "E" not in text
    # Value-preserving: the label parses back to the identical double.
    assert float(text) == canon_float(value)


def test_fmt_fraction_bisection_chain_injective():
    """Successive bisection midpoints below 1e-4 keep distinct labels."""
    lo, hi = 0.0, 0.01
    labels = set()
    values = []
    for _ in range(20):
        hi = (lo + hi) / 2
        values.append(hi)
        labels.add(fmt_fraction(hi))
    assert len(labels) == len(values)
    for value in values:
        assert float(fmt_fraction(value)) == value


def test_fmt_fraction_large_magnitudes_fixed_point():
    assert fmt_fraction(1e16) == "10000000000000000"
    assert float(fmt_fraction(1.25e17)) == 1.25e17


# ---------------------------------------------------------------------------
# canon_float: non-finite rejection (satellite 2)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_canon_float_rejects_non_finite(bad):
    with pytest.raises(ValueError, match="no canonical form"):
        canon_float(bad)


@pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "Infinity"])
def test_canon_float_rejects_non_finite_strings(bad):
    with pytest.raises(ValueError):
        canon_float(bad)


def test_canon_opt_passthrough_and_rejection():
    assert canon_opt(None) is None
    assert canon_opt(-0.0) == 0.0
    assert math.copysign(1.0, canon_opt(-0.0)) == 1.0
    with pytest.raises(ValueError):
        canon_opt(float("nan"))


def test_canon_float_collapses_negative_zero():
    out = canon_float(-0.0)
    assert out == 0.0
    assert math.copysign(1.0, out) == 1.0
    assert repr(out) == "0.0"


# ---------------------------------------------------------------------------
# ResultCache: stored-key verification + temp sweeping (satellite 3)


def _result(index: int = 0) -> ScenarioResult:
    return ScenarioResult(
        index=index,
        label=f"cell-{index}",
        axes=(("family", "two-party"),),
        violations=(),
        transactions=3,
        reverted=0,
        premium_net=(("P1", 5),),
        elapsed_seconds=0.01,
        digest="0" * 64,
        metrics=(("completed", 1.0),),
    )


def test_cache_get_rejects_key_mismatch(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.block_key("block-a", 1)
    assert cache.put(key, [_result()])
    assert cache.get(key, 1) is not None
    # Simulate a copied/renamed entry: contents earned a different address.
    other = cache.block_key("block-b", 1)
    os.replace(cache._path(key), cache._path(other))
    assert cache.get(other, 1) is None
    # A doctored key field is equally refused.
    path = cache._path(other)
    data = json.loads(path.read_text())
    data["key"] = "not-the-address"
    path.write_text(json.dumps(data))
    assert cache.get(other, 1) is None


def test_cache_roundtrip_still_works(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.block_key("block-a", 2)
    results = [_result(0), _result(1)]
    assert cache.put(key, results)
    got = cache.get(key, 2)
    assert got == results


def test_cache_sweeps_stale_temps_on_open(tmp_path):
    stale = tmp_path / ".tmp-dead123.json"
    young = tmp_path / ".tmp-live456.json"
    entry = tmp_path / "deadbeef.json"
    for path in (stale, young, entry):
        path.write_text("{}")
    old = time.time() - TEMP_SWEEP_AGE_SECONDS - 10
    os.utime(stale, (old, old))
    ResultCache(tmp_path)
    assert not stale.exists()
    assert young.exists()  # may belong to a concurrent writer
    assert entry.exists()  # real entries are never swept


def test_cache_sweep_temps_returns_count(tmp_path):
    cache = ResultCache(tmp_path)
    for name in (".tmp-a.json", ".tmp-b.json"):
        path = tmp_path / name
        path.write_text("{}")
        old = time.time() - 7200
        os.utime(path, (old, old))
    assert cache.sweep_temps() == 2


# ---------------------------------------------------------------------------
# code_version: refresh / invalidate (satellite 4)


def test_code_version_memoized_and_refreshable(monkeypatch):
    baseline = code_version()
    assert code_version() == baseline  # memo: same process, same key

    import repro.campaign.cache as cache_mod

    # Simulate an edit landing under a long-lived process: poison the memo
    # and check both escape hatches re-derive the real on-disk digest.
    monkeypatch.setattr(cache_mod, "_CODE_VERSION", "stale-memo")
    assert code_version() == "stale-memo"
    assert code_version(refresh=True) == baseline

    monkeypatch.setattr(cache_mod, "_CODE_VERSION", "stale-memo")
    invalidate_code_version()
    assert code_version() == baseline


def test_code_version_tracks_source_changes(tmp_path, monkeypatch):
    """The digest is a real function of the tree: new source, new key."""
    import repro.campaign.cache as cache_mod

    src = tmp_path / "repro"
    (src / "campaign").mkdir(parents=True)
    (src / "a.py").write_text("x = 1\n")
    fake_file = src / "campaign" / "cache.py"
    fake_file.write_text("# stand-in\n")

    monkeypatch.setattr(cache_mod, "__file__", str(fake_file))
    invalidate_code_version()
    try:
        first = code_version()
        (src / "a.py").write_text("x = 2\n")
        assert code_version() == first  # memo still vouches
        assert code_version(refresh=True) != first  # re-hash sees the edit
    finally:
        monkeypatch.undo()
        invalidate_code_version()


def test_code_version_filesystem_order_independent(tmp_path):
    """The walk is sorted before hashing: shuffled input, same digest.

    This is the exact hazard ORD001 exists to catch — a directory walk
    feeding a digest.  ``_hash_sources`` must be a pure function of the
    tree's *contents*, never of inode-creation order.
    """
    from repro.campaign.cache import _hash_sources, _source_key

    root = tmp_path
    (root / "zz.py").write_text("z = 1\n")
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "aa.py").write_text("a = 2\n")
    (root / "mm.py").write_text("m = 3\n")

    paths = [root / "zz.py", pkg / "aa.py", root / "mm.py"]
    forward = _hash_sources(root, paths)
    assert _hash_sources(root, list(reversed(paths))) == forward
    assert _hash_sources(root, sorted(paths)) == forward


def test_source_key_is_posix_relative(tmp_path):
    """Sort keys are os.sep-independent so the digest ports across hosts."""
    from repro.campaign.cache import _source_key

    pkg = tmp_path / "pkg"
    pkg.mkdir()
    path = pkg / "mod.py"
    path.write_text("pass\n")
    assert _source_key(tmp_path, path) == "pkg/mod.py"
