"""Unit tests for the swap digraph model, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph.digraph import ArcSpec, SwapGraph, complete_graph, figure3_graph, ring_graph


def _to_nx(graph: SwapGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.parties)
    g.add_edges_from(graph.arcs)
    return g


def test_figure3_structure(fig3):
    assert set(fig3.parties) == {"A", "B", "C"}
    assert set(fig3.arcs) == {("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")}


def test_in_out_arcs(fig3):
    assert set(fig3.in_arcs("A")) == {("B", "A"), ("C", "A")}
    assert set(fig3.out_arcs("B")) == {("B", "A"), ("B", "C")}
    assert fig3.in_neighbors("C") == ("B",)
    assert fig3.out_neighbors("C") == ("A",)


def test_duplicate_parties_rejected():
    with pytest.raises(GraphError):
        SwapGraph(("A", "A"), (), {})


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        SwapGraph.build(["A", "B"], [("A", "A")])


def test_unknown_party_in_arc_rejected():
    with pytest.raises(GraphError):
        SwapGraph.build(["A", "B"], [("A", "Z")])


def test_specs_must_cover_arcs():
    with pytest.raises(GraphError):
        SwapGraph(("A", "B"), (("A", "B"),), {})


def test_strong_connectivity_matches_networkx(fig3, ring3):
    for graph in (fig3, ring3, complete_graph(4)):
        assert graph.is_strongly_connected() == nx.is_strongly_connected(_to_nx(graph))


def test_not_strongly_connected():
    g = SwapGraph.build(["A", "B", "C"], [("A", "B"), ("B", "A"), ("B", "C")])
    assert not g.is_strongly_connected()


def test_diameter_matches_networkx(fig3):
    for graph in (fig3, ring_graph(5), complete_graph(4)):
        expected = nx.diameter(_to_nx(graph))
        assert graph.diameter == expected


def test_diameter_requires_strong_connectivity():
    g = SwapGraph.build(["A", "B"], [("A", "B")])
    with pytest.raises(GraphError):
        _ = g.diameter


def test_simple_paths_match_networkx(fig3):
    for source in fig3.parties:
        for target in fig3.parties:
            if source == target:
                continue
            ours = {p for p in fig3.simple_paths(source, target)}
            theirs = {
                tuple(p) for p in nx.all_simple_paths(_to_nx(fig3), source, target)
            }
            assert ours == theirs


def test_simple_paths_trivial():
    g = figure3_graph()
    assert g.simple_paths("A", "A") == [("A",)]


def test_hashkey_paths_figure3b(fig3):
    """Exactly the paths shown in Figure 3b for hashkey k_A."""
    assert fig3.hashkey_paths(("B", "A"), "A") == [("A",)]
    assert fig3.hashkey_paths(("C", "A"), "A") == [("A",)]
    assert fig3.hashkey_paths(("B", "C"), "A") == [("C", "A")]
    assert sorted(fig3.hashkey_paths(("A", "B"), "A")) == [("B", "A"), ("B", "C", "A")]


def test_hashkey_paths_unknown_arc(fig3):
    with pytest.raises(GraphError):
        fig3.hashkey_paths(("A", "C"), "A")


def test_is_path(fig3):
    assert fig3.is_path(("B", "C", "A"))
    assert fig3.is_path(("A",))
    assert not fig3.is_path(("C", "B"))  # no arc C->B
    assert not fig3.is_path(("A", "B", "A"))  # repeats
    assert not fig3.is_path(())


def test_follower_depths_figure3(fig3):
    assert fig3.follower_depths(("A",)) == {"A": 0, "B": 1, "C": 2}


def test_follower_depths_require_fvs(fig3):
    with pytest.raises(GraphError):
        fig3.follower_depths(("C",))  # A<->B cycle remains


def test_follower_depths_ring():
    g = ring_graph(4)
    assert g.follower_depths(("P0",)) == {"P0": 0, "P1": 1, "P2": 2, "P3": 3}


def test_ring_and_complete_constructors():
    assert len(ring_graph(5).arcs) == 5
    assert len(complete_graph(4).arcs) == 12
    with pytest.raises(GraphError):
        ring_graph(1)
    with pytest.raises(GraphError):
        complete_graph(1)


def test_chains_derived_from_specs(fig3):
    assert fig3.chains == ("a-chain", "b-chain", "c-chain")


def test_max_path_length(fig3):
    assert fig3.max_path_length == 3
