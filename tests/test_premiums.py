"""Unit tests for Equations 1 and 2 and the premium flow machinery."""

import pytest

from repro.core.premiums import (
    escrow_premium_amounts,
    leader_redemption_total,
    path_member_sets,
    pruned_redemption_premium_amount,
    redemption_premium_amount,
    redemption_premium_flow,
    redemption_premium_table,
    required_redemption_keys,
    worst_case_leader_premium,
    worst_case_redemption_amount,
)
from repro.errors import GraphError
from repro.graph.digraph import ArcSpec, SwapGraph, complete_graph, figure3_graph, ring_graph


# ----------------------------------------------------------------------
# Equation 1 on Figure 3a (hand-computed values)
# ----------------------------------------------------------------------
def test_eq1_leader_origination_amounts(fig3):
    # A's deposit on (B,A): beneficiary B passes through to (A,B) only -> 2p
    assert redemption_premium_amount(fig3, ("A",), "B", 1) == 2
    # A's deposit on (C,A): C passes to (B,C), B to (A,B) -> 3p
    assert redemption_premium_amount(fig3, ("A",), "C", 1) == 3


def test_eq1_passthrough_amounts(fig3):
    # B's deposit on (A,B) with path (B,A): beneficiary A on the path -> p
    assert redemption_premium_amount(fig3, ("B", "A"), "A", 1) == 1
    # C's deposit on (B,C) with path (C,A): B passes to (A,B) -> 2p
    assert redemption_premium_amount(fig3, ("C", "A"), "B", 1) == 2


def test_eq1_scales_linearly_in_p(fig3):
    assert redemption_premium_amount(fig3, ("A",), "C", 5) == 15


def test_eq1_rejects_non_paths(fig3):
    with pytest.raises(GraphError):
        redemption_premium_amount(fig3, ("C", "B"), "A", 1)
    with pytest.raises(GraphError):
        redemption_premium_amount(fig3, (), "A", 1)


def test_leader_total_figure3(fig3):
    assert leader_redemption_total(fig3, "A", 1) == 5


def test_redemption_table_covers_all_paths(fig3):
    table = redemption_premium_table(fig3, "A", 1)
    assert table[("A", "B")] == {("B", "A"): 1, ("B", "C", "A"): 1}
    assert table[("C", "A")] == {("A",): 3}


# ----------------------------------------------------------------------
# Equation 2 on Figure 3a
# ----------------------------------------------------------------------
def test_eq2_figure3(fig3):
    premiums = escrow_premium_amounts(fig3, ("A",), 1)
    assert premiums == {
        ("B", "A"): 5,  # enters the leader: R(A)
        ("C", "A"): 5,
        ("B", "C"): 5,  # enters follower C: covers E(C,A)
        ("A", "B"): 10,  # enters follower B: covers E(B,A) + E(B,C)
    }


def test_eq2_requires_fvs(fig3):
    with pytest.raises(GraphError):
        escrow_premium_amounts(fig3, ("C",), 1)


def test_ring_premiums_linear():
    """Unique paths: leader premium grows linearly with n (§7.1)."""
    totals = [leader_redemption_total(ring_graph(n), "P0", 1) for n in range(2, 7)]
    assert totals == [n for n in range(2, 7)]
    diffs = [b - a for a, b in zip(totals, totals[1:])]
    assert all(d == diffs[0] for d in diffs)


def test_complete_premiums_superlinear():
    """Complete digraphs: worst-case leader premium grows exponentially."""
    leaders = {n: tuple(f"P{i}" for i in range(n - 1)) for n in (3, 4, 5)}
    totals = [
        worst_case_leader_premium(complete_graph(n), leaders[n], 1) for n in (3, 4, 5)
    ]
    assert totals[0] < totals[1] < totals[2]
    # growth ratio increases (super-linear growth)
    assert totals[2] / totals[1] > totals[1] / totals[0]


# ----------------------------------------------------------------------
# pruned (footnote 7) variants and the flow simulation
# ----------------------------------------------------------------------
@pytest.fixture
def broker_graph():
    arcs = [("B", "A"), ("C", "A"), ("A", "B"), ("A", "C")]
    specs = {a: ArcSpec("x", "t", 1) for a in arcs}
    graph = SwapGraph(("A", "B", "C"), tuple(arcs), specs)
    contract_of = {
        ("B", "A"): "ticket",
        ("A", "C"): "ticket",
        ("C", "A"): "coin",
        ("A", "B"): "coin",
    }
    return graph, contract_of


def test_pruned_amount_matches_footnote7(broker_graph):
    graph, contract_of = broker_graph
    # unpruned: B's origination on (A,B) costs 4p (A forwards to both arcs)
    assert pruned_redemption_premium_amount(graph, ("B",), "A", 1, None) == 4
    # pruned: forwarding to (C,A) shares the coin contract -> 2p
    assert pruned_redemption_premium_amount(graph, ("B",), "A", 1, contract_of) == 2


def test_pruned_none_equals_eq1(fig3):
    for path, beneficiary in [(("A",), "B"), (("A",), "C"), (("C", "A"), "B")]:
        assert pruned_redemption_premium_amount(
            fig3, path, beneficiary, 3, None
        ) == redemption_premium_amount(fig3, path, beneficiary, 3)


def test_flow_simulation_unpruned_covers_all_arcs(broker_graph):
    graph, _ = broker_graph
    flow = redemption_premium_flow(graph, ("A", "B", "C"), 1)
    per_leader = {leader: {d.arc for d in flow if d.leader == leader} for leader in "ABC"}
    # unpruned: every leader's premium reaches every arc
    for leader, arcs in per_leader.items():
        assert arcs == set(graph.arcs)


def test_flow_simulation_pruned_required_sets(broker_graph):
    graph, contract_of = broker_graph
    required = required_redemption_keys(graph, ("A", "B", "C"), contract_of)
    assert required[("B", "A")] == frozenset({"A", "B"})
    assert required[("A", "C")] == frozenset({"A", "C"})
    assert required[("C", "A")] == frozenset({"A", "C"})
    assert required[("A", "B")] == frozenset({"A", "B"})


def test_flow_rounds_are_consistent(fig3):
    """Deposits happen one round after the premium they extend."""
    flow = redemption_premium_flow(fig3, ("A",), 1)
    by_arc = {d.arc: d for d in flow}
    assert by_arc[("B", "A")].round == 0  # leader origination
    assert by_arc[("B", "C")].round == 1  # C extends
    assert by_arc[("A", "B")].round == 1  # B extends
    assert by_arc[("B", "C")].path == ("C", "A")


def test_flow_amounts_match_eq1(fig3):
    for deposit in redemption_premium_flow(fig3, ("A",), 2):
        expected = redemption_premium_amount(fig3, deposit.path, deposit.arc[0], 2)
        assert deposit.amount == expected


# ----------------------------------------------------------------------
# Equation-1 memoization (the complete:6 enabler)
# ----------------------------------------------------------------------
def test_eq1_amount_depends_only_on_path_membership():
    """The memo key is (member set, beneficiary, p): two paths with the
    same vertex set must price identically — the invariant the shared
    cache relies on."""
    from repro.graph.digraph import complete_graph

    graph = complete_graph(4)
    a = redemption_premium_amount(graph, ("P1", "P2", "P0"), "P3", 2)
    b = redemption_premium_amount(graph, ("P2", "P1", "P0"), "P3", 2)
    assert a == b


def test_eq1_memo_is_per_graph_and_per_p():
    from repro.graph.digraph import complete_graph

    graph = complete_graph(4)
    assert redemption_premium_amount(graph, ("P1", "P0"), "P2", 1) * 3 == (
        redemption_premium_amount(graph, ("P1", "P0"), "P2", 3)
    )
    memo = graph.__dict__["_equation1_memo"]
    assert memo  # populated
    fresh = complete_graph(4)
    assert "_equation1_memo" not in fresh.__dict__  # never shared


def test_complete6_premium_sizing_is_feasible_and_consistent():
    import time

    from repro.graph.digraph import complete_graph

    graph = complete_graph(6)
    leaders = tuple(sorted(graph.parties)[:-1])  # n-1 leaders for a clique
    start = time.perf_counter()
    escrow = escrow_premium_amounts(graph, leaders, 1)
    worst = max(
        redemption_premium_amount(graph, q, u, 1)
        for (u, v) in graph.arcs
        for leader in leaders
        for q in graph.simple_paths(v, leader)
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0  # exponential pre-memo, ~ms now
    assert len(escrow) == 30 and all(v > 0 for v in escrow.values())
    assert worst > 1


# ----------------------------------------------------------------------
# member-subset worst-case enumeration (perf satellite, ISSUE 4)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "graph_fn",
    [figure3_graph, lambda: ring_graph(5), lambda: complete_graph(4),
     lambda: complete_graph(5)],
)
def test_path_member_sets_match_simple_path_vertex_sets(graph_fn):
    graph = graph_fn()
    for source in graph.parties:
        for target in graph.parties:
            expected = {frozenset(q) for q in graph.simple_paths(source, target)}
            assert set(path_member_sets(graph, source, target)) == expected


@pytest.mark.parametrize(
    "graph_fn",
    [figure3_graph, lambda: ring_graph(5), lambda: complete_graph(5)],
)
@pytest.mark.parametrize("p", [1, 3])
def test_worst_case_amount_equals_path_enumeration_max(graph_fn, p):
    graph = graph_fn()
    for (u, v) in graph.arcs:
        for leader in graph.parties:
            by_paths = max(
                (
                    redemption_premium_amount(graph, q, u, p)
                    for q in graph.simple_paths(v, leader)
                ),
                default=0,
            )
            assert worst_case_redemption_amount(graph, v, u, leader, p) == by_paths


def test_worst_case_amount_unreachable_target_is_zero():
    graph = SwapGraph.build(
        ["A", "B", "C"], [("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")]
    )
    # no forward path from A to ... itself-only cases: A -> A is trivial
    assert path_member_sets(graph, "A", "A") == (frozenset({"A"}),)
    # C has no arc into B: paths C->B must route via A
    assert all("A" in s for s in path_member_sets(graph, "C", "B"))


def test_complete8_builds_fast_enough_for_campaigns():
    import time

    from repro.core.hedged_multi_party import HedgedMultiPartySwap

    start = time.perf_counter()
    instance = HedgedMultiPartySwap(graph=complete_graph(8), premium=1).build()
    elapsed = time.perf_counter() - start
    # ~4 s before the member-subset enumeration, ~0.1 s after; the loose
    # bound only guards against regressing to path enumeration
    assert elapsed < 2.0
    assert instance.horizon > 0


def test_complete7_and_complete8_join_the_default_multi_party_family():
    from itertools import islice

    from repro.campaign import default_matrix, run_scenario

    matrix = default_matrix(families=["multi-party"])
    schedules = {block.schedule for block in matrix.blocks}
    assert {"complete7/p1", "complete8/p1"} <= schedules
    complete8 = (
        scenario
        for scenario in matrix.scenarios()
        if ("schedule", "complete8/p1") in scenario.axes
    )
    results = [run_scenario(scenario) for scenario in islice(complete8, 3)]
    assert len(results) == 3
    assert all(result.ok for result in results)


def test_complete6_joins_the_default_multi_party_family():
    from itertools import islice

    from repro.campaign import default_matrix, run_scenario

    matrix = default_matrix(families=["multi-party"])
    schedules = {block.schedule for block in matrix.blocks}
    assert "complete6/p1" in schedules
    complete6 = (
        scenario
        for scenario in matrix.scenarios()
        if ("schedule", "complete6/p1") in scenario.axes
    )
    results = [run_scenario(scenario) for scenario in islice(complete6, 8)]
    assert len(results) == 8
    assert all(result.ok for result in results)
