"""Multi-party swaps on heterogeneous configurations.

The canned graphs put each arc's asset on the sender's own chain with a
uniform amount.  Real swaps are messier: arcs sharing one chain, different
amounts per arc, several tokens on the same chain.  These tests verify the
machinery is agnostic to all of that.
"""

import pytest

from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.graph.digraph import ArcSpec, SwapGraph
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute


@pytest.fixture
def shared_chain_graph():
    """Three parties, TWO chains: A and B both sell tokens living on the
    'dex' chain; C pays from its own chain.  Amounts all differ."""
    arcs = [("A", "B"), ("B", "C"), ("C", "A")]
    specs = {
        ("A", "B"): ArcSpec("dex", "alpha", 70),
        ("B", "C"): ArcSpec("dex", "beta", 11),
        ("C", "A"): ArcSpec("c-chain", "gamma", 400),
    }
    return SwapGraph(("A", "B", "C"), tuple(arcs), specs)


def test_shared_chain_compliant_run(shared_chain_graph):
    instance = HedgedMultiPartySwap(graph=shared_chain_graph, leaders=("A",)).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed
    assert all(net == 0 for net in out.premium_net.values())
    assert not result.reverted()


def test_shared_chain_amounts_flow_correctly(shared_chain_graph):
    instance = HedgedMultiPartySwap(graph=shared_chain_graph, leaders=("A",)).build()
    result = execute(instance)
    payoffs = result.payoffs
    dex = instance.world.chain("dex")
    alpha, beta = dex.asset("alpha"), dex.asset("beta")
    gamma = instance.world.chain("c-chain").asset("gamma")
    assert payoffs.delta("B").get(alpha, 0) == 70
    assert payoffs.delta("C").get(beta, 0) == 11
    assert payoffs.delta("A").get(gamma, 0) == 400


def test_shared_chain_deviations_still_hedged(shared_chain_graph):
    instance = HedgedMultiPartySwap(graph=shared_chain_graph, leaders=("A",)).build()
    for who in ("A", "B", "C"):
        for rnd in range(0, instance.horizon, 2):
            fresh = HedgedMultiPartySwap(graph=shared_chain_graph, leaders=("A",)).build()
            result = execute(fresh, {who: lambda a, r=rnd: halt_at(a, r)})
            out = extract_multi_party_outcome(fresh, result)
            for party in out.parties:
                if party != who:
                    assert out.safety_holds(party), (who, rnd, party)
                    assert out.hedged_holds(party), (who, rnd, party)


def test_single_chain_world():
    """Degenerate but legal: every asset on ONE chain (premiums included)."""
    arcs = [("A", "B"), ("B", "A")]
    specs = {
        ("A", "B"): ArcSpec("solo", "x-token", 5),
        ("B", "A"): ArcSpec("solo", "y-token", 9),
    }
    graph = SwapGraph(("A", "B"), tuple(arcs), specs)
    instance = HedgedMultiPartySwap(graph=graph, leaders=("A",), premium=3).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed
    assert not result.reverted()


def test_two_party_ring_as_multi_party_swap():
    """The two-party swap expressed in the multi-party machinery behaves
    like §5: a halt after escrow compensates the victim with ≥ p."""
    arcs = [("Alice", "Bob"), ("Bob", "Alice")]
    specs = {
        ("Alice", "Bob"): ArcSpec("apricot", "apricot-token", 100),
        ("Bob", "Alice"): ArcSpec("banana", "banana-token", 100),
    }
    graph = SwapGraph(("Alice", "Bob"), tuple(arcs), specs)
    instance = HedgedMultiPartySwap(graph=graph, leaders=("Alice",), premium=2).build()
    # Bob halts in phase 4 (withholds the hashkey he should forward)
    result = execute(
        instance, {"Bob": lambda a: halt_at(a, instance.meta["schedule"].p4_start)}
    )
    out = extract_multi_party_outcome(instance, result)
    assert out.safety_holds("Alice")
    assert out.hedged_holds("Alice")


def test_large_amounts_no_overflow():
    """Integer amounts: billions of base units work exactly."""
    arcs = [("A", "B"), ("B", "A")]
    big = 10**15
    specs = {
        ("A", "B"): ArcSpec("a-chain", "a-token", big),
        ("B", "A"): ArcSpec("b-chain", "b-token", big + 1),
    }
    graph = SwapGraph(("A", "B"), tuple(arcs), specs)
    instance = HedgedMultiPartySwap(graph=graph, leaders=("A",), premium=10**9).build()
    result = execute(instance)
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed
